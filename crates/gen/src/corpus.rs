//! The deterministic evaluation corpus: 3 × `per_category` verified MBA
//! identity equations mirroring the paper's 3 000-sample dataset (§3.1).

use std::fmt;

use mba_expr::{Expr, Metrics, Valuation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::obfuscate::{ObfuscationKind, Obfuscator, ObfuscatorConfig};

/// One corpus entry: an MBA identity equation
/// `obfuscated == ground_truth`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Stable index within the corpus.
    pub id: usize,
    /// The category the obfuscator was asked for (and verified to hit).
    pub kind: ObfuscationKind,
    /// The simple expression the identity hides.
    pub ground_truth: Expr,
    /// The obfuscated, equivalent expression.
    pub obfuscated: Expr,
}

impl Sample {
    /// Verifies the identity by randomized evaluation: `trials` random
    /// inputs at widths 8, 32 and 64 bits.
    pub fn verify(&self, rng: &mut impl Rng, trials: usize) -> bool {
        let vars = self.obfuscated.vars();
        for _ in 0..trials {
            let v: Valuation = vars.iter().map(|n| (n.clone(), rng.gen())).collect();
            for w in [8u32, 32, 64] {
                if self.ground_truth.eval(&v, w) != self.obfuscated.eval(&v, w) {
                    return false;
                }
            }
        }
        true
    }

    /// Complexity metrics of the obfuscated side.
    pub fn metrics(&self) -> Metrics {
        Metrics::of(&self.obfuscated)
    }
}

impl fmt::Display for Sample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [{}] {} == {}",
            self.id, self.kind, self.obfuscated, self.ground_truth
        )
    }
}

/// Corpus generation parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusConfig {
    /// RNG seed; the same seed reproduces the same corpus bit-for-bit.
    pub seed: u64,
    /// Samples per category (the paper uses 1000).
    pub per_category: usize,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x4d42_4153,
            per_category: 1000,
        }
    }
}

/// The evaluation corpus: `per_category` samples of each MBA category,
/// every one verified at generation time.
#[derive(Debug, Clone)]
pub struct Corpus {
    samples: Vec<Sample>,
}

/// Ground-truth pool, spanning 1–4 variables like the paper's corpus
/// (Table 1: 1 ≤ #vars ≤ 4). Linear/non-poly targets; the generator
/// appends product targets for the poly category.
const LINEAR_TARGETS: &[&str] = &[
    "x + y",
    "x - y",
    "x ^ y",
    "x | y",
    "x & y",
    "x",
    "-x",
    "2*x + y",
    "x + y + z",
    "x - y + z",
    "x + 2*y - z",
    "x ^ (y | z)",
    "x + y - z + w",
    "x + 7",
];

const POLY_TARGETS: &[&str] = &[
    "x*y",
    "x*y + z",
    "x*y - x",
    "x*x",
    "x*y + x + y",
    "2*x*y - z",
];

/// Ground truths for the residual profile: small enough (≤ 5 nodes,
/// ≤ 3 variables) that an enumerative synthesis tier with a modest
/// node budget can re-discover them once the algebraic pipeline gives
/// up on the parity-wrapped obfuscation.
const RESIDUAL_TARGETS: &[&str] = &[
    "x + y",
    "x - y",
    "x ^ y",
    "x & y",
    "x | y",
    "2*x",
    "x + 1",
    "x + y + z",
];

impl Corpus {
    /// Generates the corpus for `config`. Complexity knobs are drawn per
    /// sample to reproduce the spread of Table 1 (terms, alternation,
    /// coefficients).
    ///
    /// # Panics
    ///
    /// Panics if a generated sample fails its randomized verification —
    /// which would indicate a bug in the obfuscator, not bad luck.
    pub fn generate(config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut samples = Vec::with_capacity(config.per_category * 3);
        let kinds = [
            ObfuscationKind::Linear,
            ObfuscationKind::Polynomial,
            ObfuscationKind::NonPolynomial,
        ];
        for kind in kinds {
            for i in 0..config.per_category {
                let sample = Self::generate_one(samples.len(), kind, i, &mut rng);
                assert!(
                    sample.verify(&mut rng, 6),
                    "generated sample failed verification: {sample}"
                );
                samples.push(sample);
            }
        }
        Corpus { samples }
    }

    /// Generates the residual-profile corpus (`--profile residual`):
    /// `per_category` samples whose ground truths are small expressions
    /// wrapped in parity opaque zeros so `classify()` lands outside
    /// `Linear`/`SemiLinear` and the algebraic pipeline leaves them for
    /// the enumerative synthesis tier.
    ///
    /// # Panics
    ///
    /// Panics if a generated sample fails its randomized verification.
    pub fn generate_residual(config: &CorpusConfig) -> Corpus {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut samples = Vec::with_capacity(config.per_category);
        for i in 0..config.per_category {
            let sample =
                Self::generate_one(samples.len(), ObfuscationKind::Residual, i, &mut rng);
            assert!(
                sample.verify(&mut rng, 6),
                "generated residual sample failed verification: {sample}"
            );
            samples.push(sample);
        }
        Corpus { samples }
    }

    fn generate_one(
        id: usize,
        kind: ObfuscationKind,
        index: usize,
        rng: &mut StdRng,
    ) -> Sample {
        let pool: &[&str] = match kind {
            ObfuscationKind::Polynomial => POLY_TARGETS,
            ObfuscationKind::Residual => RESIDUAL_TARGETS,
            _ => LINEAR_TARGETS,
        };
        let ground_truth: Expr = pool[index % pool.len()].parse().expect("pool parses");

        // Complexity draw: linear/poly average ~9 alternation, non-poly
        // roughly double with a long tail (Table 1).
        let config = match kind {
            ObfuscationKind::Linear | ObfuscationKind::SemiLinear => ObfuscatorConfig {
                linear_extra_terms: rng.gen_range(4..=13),
                bitwise_depth: rng.gen_range(1..=3),
                ..ObfuscatorConfig::default()
            },
            ObfuscationKind::Polynomial => ObfuscatorConfig {
                linear_extra_terms: rng.gen_range(2..=6),
                bitwise_depth: rng.gen_range(1..=2),
                zero_identity_terms: rng.gen_range(3..=6),
                ..ObfuscatorConfig::default()
            },
            ObfuscationKind::NonPolynomial => ObfuscatorConfig {
                linear_extra_terms: rng.gen_range(2..=6),
                bitwise_depth: rng.gen_range(1..=2),
                rewrite_rounds: rng.gen_range(1..=4),
                ..ObfuscatorConfig::default()
            },
            // The residual wrapper ignores the complexity knobs; its
            // whole point is to stay small.
            ObfuscationKind::Residual => ObfuscatorConfig::default(),
        };
        let obfuscator = Obfuscator::with_config(config);
        let obfuscated = obfuscator.obfuscate(&ground_truth, kind, rng);
        // Record the class the output actually landed in (the obfuscator
        // may upgrade, e.g. a poly request whose junk vanished). The
        // residual profile keeps its label: `mba_class()` has no
        // "residual" answer, and the label is what `by_kind` filters on.
        let kind = if kind == ObfuscationKind::Residual {
            debug_assert_eq!(
                obfuscated.mba_class(),
                mba_expr::MbaClass::NonPolynomial,
                "residual wrapper must land outside Linear/SemiLinear: {obfuscated}"
            );
            kind
        } else {
            match obfuscated.mba_class() {
                mba_expr::MbaClass::Linear => ObfuscationKind::Linear,
                mba_expr::MbaClass::SemiLinear => ObfuscationKind::SemiLinear,
                mba_expr::MbaClass::Polynomial => ObfuscationKind::Polynomial,
                mba_expr::MbaClass::NonPolynomial => ObfuscationKind::NonPolynomial,
            }
        };
        Sample {
            id,
            kind,
            ground_truth,
            obfuscated,
        }
    }

    /// All samples, in generation order.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterates over the samples of one category.
    pub fn by_kind(&self, kind: ObfuscationKind) -> impl Iterator<Item = &Sample> {
        self.samples.iter().filter(move |s| s.kind == kind)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serializes to a tab-separated text form (`kind\ttruth\tobf`).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&format!(
                "{}\t{}\t{}\n",
                s.kind, s.ground_truth, s.obfuscated
            ));
        }
        out
    }

    /// Parses the text form produced by [`Corpus::to_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Corpus, String> {
        let mut samples = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            let (Some(kind), Some(truth), Some(obf)) =
                (fields.next(), fields.next(), fields.next())
            else {
                return Err(format!("line {}: expected 3 tab-separated fields", lineno + 1));
            };
            let kind = match kind {
                "linear" => ObfuscationKind::Linear,
                "semi-linear" => ObfuscationKind::SemiLinear,
                "poly" => ObfuscationKind::Polynomial,
                "non-poly" => ObfuscationKind::NonPolynomial,
                "residual" => ObfuscationKind::Residual,
                other => return Err(format!("line {}: unknown kind `{other}`", lineno + 1)),
            };
            let ground_truth: Expr = truth
                .parse()
                .map_err(|e| format!("line {}: bad ground truth: {e}", lineno + 1))?;
            let obfuscated: Expr = obf
                .parse()
                .map_err(|e| format!("line {}: bad obfuscation: {e}", lineno + 1))?;
            samples.push(Sample {
                id: samples.len(),
                kind,
                ground_truth,
                obfuscated,
            });
        }
        Ok(Corpus { samples })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        Corpus::generate(&CorpusConfig {
            seed: 1,
            per_category: 12,
        })
    }

    #[test]
    fn generates_requested_counts() {
        let c = small();
        assert_eq!(c.len(), 36);
        assert!(!c.is_empty());
        // Category totals add up even when the obfuscator re-labels.
        let total: usize = [
            ObfuscationKind::Linear,
            ObfuscationKind::Polynomial,
            ObfuscationKind::NonPolynomial,
        ]
        .iter()
        .map(|&k| c.by_kind(k).count())
        .sum();
        assert_eq!(total, 36);
    }

    #[test]
    fn kinds_match_actual_class() {
        for s in small().samples() {
            let class = s.obfuscated.mba_class();
            let expected = match s.kind {
                ObfuscationKind::Linear => mba_expr::MbaClass::Linear,
                ObfuscationKind::SemiLinear => mba_expr::MbaClass::SemiLinear,
                ObfuscationKind::Polynomial => mba_expr::MbaClass::Polynomial,
                ObfuscationKind::NonPolynomial => mba_expr::MbaClass::NonPolynomial,
                ObfuscationKind::Residual => mba_expr::MbaClass::NonPolynomial,
            };
            assert_eq!(class, expected, "sample {s}");
        }
    }

    #[test]
    fn every_category_is_populated() {
        let c = small();
        assert!(c.by_kind(ObfuscationKind::Linear).count() >= 10);
        assert!(c.by_kind(ObfuscationKind::Polynomial).count() >= 10);
        assert!(c.by_kind(ObfuscationKind::NonPolynomial).count() >= 10);
    }

    #[test]
    fn residual_profile_generates_labeled_nonpoly_samples() {
        let c = Corpus::generate_residual(&CorpusConfig {
            seed: 2,
            per_category: 16,
        });
        assert_eq!(c.len(), 16);
        let mut rng = StdRng::seed_from_u64(77);
        for s in c.samples() {
            assert_eq!(s.kind, ObfuscationKind::Residual, "sample {s}");
            assert_eq!(
                s.obfuscated.mba_class(),
                mba_expr::MbaClass::NonPolynomial,
                "sample {s}"
            );
            assert!(
                s.ground_truth.node_count() <= 5,
                "residual ground truths must stay synthesizable: {s}"
            );
            assert!(s.verify(&mut rng, 8), "sample failed: {s}");
        }
        // The label survives the text round trip.
        let parsed = Corpus::from_text(&c.to_text()).expect("roundtrip parses");
        assert!(parsed
            .samples()
            .iter()
            .all(|s| s.kind == ObfuscationKind::Residual));
    }

    #[test]
    fn samples_survive_independent_verification() {
        let mut rng = StdRng::seed_from_u64(999);
        for s in small().samples() {
            assert!(s.verify(&mut rng, 8), "sample failed: {s}");
        }
    }

    #[test]
    fn same_seed_same_corpus() {
        let a = Corpus::generate(&CorpusConfig { seed: 5, per_category: 4 });
        let b = Corpus::generate(&CorpusConfig { seed: 5, per_category: 4 });
        assert_eq!(a.samples(), b.samples());
        let c = Corpus::generate(&CorpusConfig { seed: 6, per_category: 4 });
        assert_ne!(a.samples(), c.samples());
    }

    #[test]
    fn text_roundtrip() {
        let c = small();
        let text = c.to_text();
        let parsed = Corpus::from_text(&text).expect("roundtrip parses");
        assert_eq!(parsed.len(), c.len());
        for (a, b) in c.samples().iter().zip(parsed.samples()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.ground_truth, b.ground_truth);
            assert_eq!(a.obfuscated, b.obfuscated);
        }
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Corpus::from_text("linear\tonly-two-fields").is_err());
        assert!(Corpus::from_text("weird\tx\ty").is_err());
        assert!(Corpus::from_text("linear\t((\tx").is_err());
        // Blank lines are fine.
        assert!(Corpus::from_text("\n\n").unwrap().is_empty());
    }

    #[test]
    fn obfuscation_complexity_is_substantial() {
        let c = small();
        let avg_alt: f64 = c
            .samples()
            .iter()
            .map(|s| s.metrics().alternation as f64)
            .sum::<f64>()
            / c.len() as f64;
        assert!(avg_alt >= 4.0, "average alternation only {avg_alt:.1}");
    }
}
