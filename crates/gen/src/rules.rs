//! The published MBA rewrite catalog (paper §2.1–§2.2).
//!
//! These are the identities the literature reuses everywhere — HAKMEM,
//! Hacker's Delight, Zhou et al., Eyrolles' thesis, and the paper's own
//! §2.2 list of `x + y` encodings. Each rule is an unconditional
//! identity over `Z/2^w` for every `w`, stated over the metavariables
//! `a`, `b`; substituting arbitrary expressions is therefore sound,
//! which is exactly how the non-poly obfuscator uses them.

use mba_expr::{Expr, Ident};

/// One catalog entry: `lhs == rhs` for all inputs, at every width.
#[derive(Debug, Clone)]
pub struct RewriteRule {
    /// Short name for diagnostics (e.g. `"add-via-or-and"`).
    pub name: &'static str,
    /// Where the identity is catalogued.
    pub source: &'static str,
    /// The simple side, over metavariables `a`, `b`.
    pub lhs: Expr,
    /// The obfuscated side.
    pub rhs: Expr,
}

impl RewriteRule {
    /// Instantiates the obfuscated side with concrete subexpressions.
    pub fn apply(&self, a: &Expr, b: &Expr) -> Expr {
        let ia = Ident::new("a");
        let ib = Ident::new("b");
        self.rhs.substitute(&ia, a).substitute(&ib, b)
    }
}

/// `(name, source, lhs, rhs)` catalog rows; parsed once by [`catalog`].
const ROWS: &[(&str, &str, &str, &str)] = &[
    // §2.2: the paper's four x + y encodings.
    ("add-via-or-notor", "paper §2.2", "a + b", "(a | b) + (~a | b) - ~a"),
    ("add-via-or-andnot", "paper §2.2", "a + b", "(a | b) + b - (~a & b)"),
    ("add-via-xor-2b", "paper §2.2", "a + b", "(a ^ b) + 2*b - 2*(~a & b)"),
    ("add-via-minterms", "paper §2.2", "a + b", "b + (a & ~b) + (a & b)"),
    // HAKMEM / Hacker's Delight classics (equations (2) and (3) and kin).
    ("or-via-andnot", "HAKMEM", "a | b", "(a & ~b) + b"),
    ("xor-via-or-and", "HAKMEM", "a ^ b", "(a | b) - (a & b)"),
    ("add-via-or-and", "Hacker's Delight", "a + b", "(a | b) + (a & b)"),
    ("add-via-xor-and", "Hacker's Delight", "a + b", "(a ^ b) + 2*(a & b)"),
    ("sub-via-xor", "Hacker's Delight", "a - b", "(a ^ b) - 2*(~a & b)"),
    ("sub-via-example1", "paper §2.1 Example 1", "a - b", "(a ^ b) + 2*(a | ~b) + 2"),
    ("and-via-or", "Table 9 basis", "a & b", "a + b - (a | b)"),
    ("or-via-and", "Table 4 basis", "a | b", "a + b - (a & b)"),
    ("xor-via-and", "Table 5", "a ^ b", "a + b - 2*(a & b)"),
    ("not-via-neg", "two's complement", "~a", "-a - 1"),
    ("neg-via-not", "two's complement", "-a", "~a + 1"),
    // Figure 1: the product split.
    (
        "mul-split",
        "paper Figure 1",
        "a * b",
        "(a & ~b)*(~a & b) + (a & b)*(a | b)",
    ),
];

/// The full catalog, parsed. Rules are width-generic identities.
///
/// ```
/// use mba_gen::rules::catalog;
/// use mba_expr::{Expr, Valuation};
///
/// let rule = catalog().into_iter().find(|r| r.name == "add-via-or-and").unwrap();
/// // Substitute whole expressions for the metavariables:
/// let obf = rule.apply(&"x*z".parse().unwrap(), &"y - 1".parse().unwrap());
/// let v = Valuation::new().with("x", 7).with("y", 9).with("z", 3);
/// let plain: Expr = "x*z + (y - 1)".parse().unwrap();
/// assert_eq!(obf.eval(&v, 64), plain.eval(&v, 64));
/// ```
pub fn catalog() -> Vec<RewriteRule> {
    ROWS.iter()
        .map(|&(name, source, lhs, rhs)| RewriteRule {
            name,
            source,
            lhs: lhs.parse().expect("catalog lhs parses"),
            rhs: rhs.parse().expect("catalog rhs parses"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::{MbaClass, Valuation};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Every catalog rule must be an identity at widths 1, 8, 17, 64 on
    /// random inputs.
    #[test]
    fn every_rule_is_a_width_generic_identity() {
        let mut rng = StdRng::seed_from_u64(0x0CA7_A106);
        for rule in catalog() {
            for _ in 0..32 {
                let v = Valuation::new()
                    .with("a", rng.gen())
                    .with("b", rng.gen());
                for w in [1u32, 8, 17, 64] {
                    assert_eq!(
                        rule.lhs.eval(&v, w),
                        rule.rhs.eval(&v, w),
                        "rule `{}` ({}) fails at width {w}",
                        rule.name,
                        rule.source
                    );
                }
            }
        }
    }

    /// Substitution of compound expressions preserves the identity.
    #[test]
    fn rules_hold_under_substitution() {
        let mut rng = StdRng::seed_from_u64(7);
        let sub_a: Expr = "x*y - 3".parse().unwrap();
        let sub_b: Expr = "(x ^ z) + 1".parse().unwrap();
        for rule in catalog() {
            let instantiated = rule.apply(&sub_a, &sub_b);
            let ia = Ident::new("a");
            let ib = Ident::new("b");
            let plain = rule.lhs.substitute(&ia, &sub_a).substitute(&ib, &sub_b);
            for _ in 0..8 {
                let v = Valuation::new()
                    .with("x", rng.gen())
                    .with("y", rng.gen())
                    .with("z", rng.gen());
                assert_eq!(
                    plain.eval(&v, 64),
                    instantiated.eval(&v, 64),
                    "rule `{}` broke under substitution",
                    rule.name
                );
            }
        }
    }

    /// MBA-Solver inverts every rule: simplifying the obfuscated side
    /// recovers something provably equal to the simple side.
    #[test]
    fn mba_solver_inverts_the_whole_catalog() {
        let simplifier = mba_solver::Simplifier::new();
        for rule in catalog() {
            assert_eq!(
                simplifier.proves_equivalent(&rule.rhs, &rule.lhs),
                Some(true),
                "MBA-Solver cannot invert `{}` ({})",
                rule.name,
                rule.source
            );
        }
    }

    /// The obfuscated sides genuinely mix domains (except the pure
    /// complement rules).
    #[test]
    fn obfuscated_sides_are_mba() {
        for rule in catalog() {
            if matches!(rule.name, "not-via-neg" | "neg-via-not") {
                continue;
            }
            assert!(
                mba_expr::metrics::is_mixed(&rule.rhs),
                "rule `{}` rhs is not mixed: {}",
                rule.name,
                rule.rhs
            );
            // And classification is sensible.
            assert_ne!(rule.rhs.mba_class(), MbaClass::NonPolynomial, "{}", rule.name);
        }
    }

    #[test]
    fn catalog_is_substantial_and_named_uniquely() {
        let rules = catalog();
        assert!(rules.len() >= 16);
        let mut names: Vec<_> = rules.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), rules.len(), "duplicate rule names");
    }
}
