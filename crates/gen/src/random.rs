//! Structural random-AST generation for differential fuzzing.
//!
//! [`crate::bitwise`] generates *pure bitwise* trees (the `e_i` of
//! Definition 1); the obfuscators in [`crate::obfuscate`] generate
//! *identity-derived* MBA whose ground truth is known by construction.
//! The fuzzing harness (`mba-verify`) additionally needs arbitrary MBA
//! shapes — trees the obfuscation rules would never emit — so the
//! simplifier is exercised far from the corpus distribution. This module
//! provides that: a seeded, configurable generator over the full
//! `+ − × ∧ ∨ ⊕ ¬ −` grammar with a tunable linear/poly/non-poly mix.

use mba_expr::{BinOp, Expr, Ident, UnOp};
use rand::Rng;

/// Tuning knobs for [`random_expr`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandomExprConfig {
    /// Maximum operator depth (0 yields a bare leaf).
    pub max_depth: usize,
    /// Number of distinct variables to draw from (`x0`, `x1`, ...; the
    /// first three are named `x`, `y`, `z` for readability).
    pub num_vars: usize,
    /// Constants are drawn from `-max_const ..= max_const`, with 0, 1,
    /// −1 and powers of two over-represented (the values MBA identities
    /// care about).
    pub max_const: i128,
    /// Probability that a leaf is a constant rather than a variable.
    pub const_leaf_prob: f64,
    /// Relative weight of arithmetic operators (`+ − ×`, unary `−`)
    /// versus bitwise ones (`∧ ∨ ⊕ ¬`). 0.0 = pure bitwise,
    /// 1.0 = pure arithmetic, 0.5 = an even MBA mix.
    pub arith_bias: f64,
    /// Relative weight of `×` among the arithmetic operators. Products
    /// drive polynomial blow-up, so fuzzing wants them present but not
    /// dominant.
    pub mul_weight: f64,
    /// Probability that a bitwise binary node takes a non-uniform mask
    /// constant (from [`crate::obfuscate::SEMI_LINEAR_MASKS`]) as its
    /// right operand, steering trees toward the semi-linear fragment.
    /// The default 0.0 draws nothing from the RNG, so existing seeded
    /// streams are bit-for-bit unchanged.
    pub mask_const_prob: f64,
}

impl Default for RandomExprConfig {
    fn default() -> Self {
        RandomExprConfig {
            max_depth: 4,
            num_vars: 3,
            max_const: 64,
            const_leaf_prob: 0.25,
            arith_bias: 0.5,
            mul_weight: 0.2,
            mask_const_prob: 0.0,
        }
    }
}

impl RandomExprConfig {
    /// The variable pool the generator draws from.
    pub fn variables(&self) -> Vec<Ident> {
        (0..self.num_vars.max(1)).map(var_name).collect()
    }
}

/// The canonical fuzzing variable names: `x`, `y`, `z`, then `x3`,
/// `x4`, ...
pub fn var_name(index: usize) -> Ident {
    match index {
        0 => Ident::new("x"),
        1 => Ident::new("y"),
        2 => Ident::new("z"),
        n => Ident::new(format!("x{n}")),
    }
}

/// Generates one random MBA expression according to `config`.
///
/// The generator is a pure function of the RNG stream: a fixed seed
/// yields a fixed expression, which the fuzzing harness relies on to
/// replay any iteration by index.
///
/// ```
/// use mba_gen::random::{random_expr, RandomExprConfig};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let config = RandomExprConfig::default();
/// let a = random_expr(&mut StdRng::seed_from_u64(7), &config);
/// let b = random_expr(&mut StdRng::seed_from_u64(7), &config);
/// assert_eq!(a, b);
/// ```
pub fn random_expr(rng: &mut impl Rng, config: &RandomExprConfig) -> Expr {
    let vars = config.variables();
    gen_node(rng, config, &vars, config.max_depth)
}

fn gen_node(
    rng: &mut impl Rng,
    config: &RandomExprConfig,
    vars: &[Ident],
    depth: usize,
) -> Expr {
    if depth == 0 {
        return gen_leaf(rng, config, vars);
    }
    // A third of interior draws still bottom out early so generated
    // trees have varied, not uniformly maximal, depth.
    if rng.gen_bool(0.3) {
        return gen_leaf(rng, config, vars);
    }
    if rng.gen_bool(0.15) {
        let op = if rng.gen_bool(config.arith_bias) {
            UnOp::Neg
        } else {
            UnOp::Not
        };
        return Expr::unary(op, gen_node(rng, config, vars, depth - 1));
    }
    let op = gen_binop(rng, config);
    let left = gen_node(rng, config, vars, depth - 1);
    // The `> 0.0` guard keeps the RNG stream untouched at the default
    // setting, so seeded replays from older runs stay identical.
    if config.mask_const_prob > 0.0
        && matches!(op, BinOp::And | BinOp::Or | BinOp::Xor)
        && rng.gen_bool(config.mask_const_prob.clamp(0.0, 1.0))
    {
        let masks = crate::obfuscate::SEMI_LINEAR_MASKS;
        return Expr::binary(op, left, Expr::Const(masks[rng.gen_range(0..masks.len())]));
    }
    let right = gen_node(rng, config, vars, depth - 1);
    Expr::binary(op, left, right)
}

fn gen_binop(rng: &mut impl Rng, config: &RandomExprConfig) -> BinOp {
    if rng.gen_bool(config.arith_bias) {
        if rng.gen_bool(config.mul_weight) {
            BinOp::Mul
        } else if rng.gen_bool(0.5) {
            BinOp::Add
        } else {
            BinOp::Sub
        }
    } else {
        match rng.gen_range(0..3) {
            0 => BinOp::And,
            1 => BinOp::Or,
            _ => BinOp::Xor,
        }
    }
}

fn gen_leaf(rng: &mut impl Rng, config: &RandomExprConfig, vars: &[Ident]) -> Expr {
    if rng.gen_bool(config.const_leaf_prob) {
        Expr::Const(gen_const(rng, config.max_const))
    } else {
        Expr::var(vars[rng.gen_range(0..vars.len())].clone())
    }
}

/// Draws a constant with the corner values MBA identities hinge on
/// (0, ±1, ±2, powers of two) over-represented.
fn gen_const(rng: &mut impl Rng, max_const: i128) -> i128 {
    let max = max_const.max(1);
    match rng.gen_range(0..6) {
        0 => 0,
        1 => 1,
        2 => -1,
        3 => {
            // A power of two (possibly negated) within range.
            let max_shift = 127 - max.leading_zeros() as i128;
            let shift = rng.gen_range(0..=max_shift.max(0)) as u32;
            let p = 1i128 << shift;
            if rng.gen_bool(0.5) {
                p
            } else {
                -p
            }
        }
        _ => rng.gen_range(-max..=max),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn respects_depth_bound() {
        let config = RandomExprConfig {
            max_depth: 3,
            ..RandomExprConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let e = random_expr(&mut rng, &config);
            assert!(e.depth() <= 4, "too deep: {e}");
        }
    }

    #[test]
    fn uses_only_configured_variables() {
        let config = RandomExprConfig {
            num_vars: 2,
            ..RandomExprConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(12);
        let allowed = config.variables();
        for _ in 0..200 {
            let e = random_expr(&mut rng, &config);
            for v in e.vars() {
                assert!(allowed.contains(&v), "stray variable {v} in {e}");
            }
        }
    }

    #[test]
    fn constants_stay_in_range() {
        let config = RandomExprConfig {
            max_const: 16,
            ..RandomExprConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..200 {
            let e = random_expr(&mut rng, &config);
            mba_expr::visit::for_each_preorder(&e, &mut |n| {
                if let Expr::Const(c) = n {
                    assert!((-16..=16).contains(c), "constant {c} out of range in {e}");
                }
            });
        }
    }

    #[test]
    fn zero_arith_bias_is_bitwise_or_constants() {
        let config = RandomExprConfig {
            arith_bias: 0.0,
            const_leaf_prob: 0.0,
            ..RandomExprConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(14);
        for _ in 0..100 {
            let e = random_expr(&mut rng, &config);
            assert!(e.is_pure_bitwise(), "arithmetic leaked into {e}");
        }
    }

    #[test]
    fn deterministic_per_seed_and_printable() {
        let config = RandomExprConfig::default();
        let a = random_expr(&mut StdRng::seed_from_u64(99), &config);
        let b = random_expr(&mut StdRng::seed_from_u64(99), &config);
        assert_eq!(a, b);
        // Round-trips through the concrete syntax (modulo the parser's
        // folding of negated literals, which the generator never emits
        // directly above a constant only at the top).
        let printed = a.to_string();
        let reparsed: Expr = printed.parse().expect("printed form parses");
        let v = mba_expr::Valuation::new().with("x", 0xdead).with("y", 7).with("z", 123);
        assert_eq!(a.eval(&v, 64), reparsed.eval(&v, 64));
    }

    #[test]
    fn mask_const_prob_zero_leaves_streams_unchanged() {
        // Explicitly setting the knob to its default must reproduce the
        // default stream bit-for-bit (the guard never draws from the
        // RNG), so older seeded corpora replay identically.
        let plain = RandomExprConfig::default();
        let explicit = RandomExprConfig {
            mask_const_prob: 0.0,
            ..RandomExprConfig::default()
        };
        for seed in [0u64, 7, 99, 12345] {
            assert_eq!(
                random_expr(&mut StdRng::seed_from_u64(seed), &plain),
                random_expr(&mut StdRng::seed_from_u64(seed), &explicit),
            );
        }
    }

    #[test]
    fn mask_const_prob_steers_toward_semi_linear_shapes() {
        let config = RandomExprConfig {
            arith_bias: 0.0,
            const_leaf_prob: 0.0,
            mask_const_prob: 0.9,
            ..RandomExprConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(21);
        let mut masked = 0;
        for _ in 0..100 {
            let e = random_expr(&mut rng, &config);
            mba_expr::visit::for_each_preorder(&e, &mut |n| {
                if let Expr::Binary(BinOp::And | BinOp::Or | BinOp::Xor, _, rhs) = n {
                    if matches!(**rhs, Expr::Const(c) if c != 0 && c != -1) {
                        masked += 1;
                    }
                }
            });
        }
        assert!(masked > 20, "only {masked} masked bitwise nodes in 100 trees");
    }

    #[test]
    fn var_names_are_stable() {
        assert_eq!(var_name(0).as_str(), "x");
        assert_eq!(var_name(2).as_str(), "z");
        assert_eq!(var_name(5).as_str(), "x5");
    }
}
