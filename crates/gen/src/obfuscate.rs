//! The obfuscator for the paper's three MBA categories (Definitions
//! 1–2, Figure 2) plus the semi-linear extension (linear MBA with
//! constants inside the bitwise layer).

use mba_expr::classify::{decompose_term, flatten_sum};
use mba_expr::{BinOp, Expr, Ident, MbaClass, UnOp};
use rand::Rng;

use crate::identities::{obfuscate_linear, zero_identity};

/// Mask palette for semi-linear obfuscation. None of these is uniform
/// (all-zeros / all-ones) modulo any supported width ≥ 8, so wrapping a
/// factor with one always leaves the pure-bitwise fragment.
pub const SEMI_LINEAR_MASKS: &[i128] = &[
    3, 5, 6, 9, 10, 12, 0x0f, 0x33, 0x55, 0x66, 0x99, 0xcc,
];

/// Which MBA category the obfuscated output should land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObfuscationKind {
    /// `Σ aᵢ·eᵢ` — Definition 1.
    Linear,
    /// Linear MBA with non-uniform constants inside the bitwise layer,
    /// e.g. `(x & 3)` terms — the semi-linear extension.
    SemiLinear,
    /// `Σ aᵢ·Π eᵢⱼ` with a degree ≥ 2 term — Definition 2.
    Polynomial,
    /// Bitwise over arithmetic — everything outside Definition 2.
    NonPolynomial,
    /// A *residual* for the synthesis tier: the ground truth plus
    /// parity opaque zeros `(q·(q+1)) ∧ 1` (a product of consecutive
    /// integers is even, so the low bit is identically zero). The
    /// bitwise-over-arithmetic wrapper lands outside
    /// Linear/SemiLinear, and the algebraic pipeline has no mod-2
    /// reasoning to cancel it — only enumerative synthesis recovers
    /// the ground truth.
    Residual,
}

impl std::fmt::Display for ObfuscationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ObfuscationKind::Linear => "linear",
            ObfuscationKind::SemiLinear => "semi-linear",
            ObfuscationKind::Polynomial => "poly",
            ObfuscationKind::NonPolynomial => "non-poly",
            ObfuscationKind::Residual => "residual",
        })
    }
}

/// Tuning knobs for the obfuscator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObfuscatorConfig {
    /// Decoy bitwise terms added by linear obfuscation.
    pub linear_extra_terms: usize,
    /// Depth of random bitwise expressions.
    pub bitwise_depth: usize,
    /// Bitwise terms per zero identity in polynomial junk.
    pub zero_identity_terms: usize,
    /// Recursive rewriting rounds for non-poly obfuscation.
    pub rewrite_rounds: usize,
}

impl Default for ObfuscatorConfig {
    fn default() -> Self {
        ObfuscatorConfig {
            linear_extra_terms: 6,
            bitwise_depth: 2,
            zero_identity_terms: 5,
            rewrite_rounds: 3,
        }
    }
}

/// Obfuscates ground-truth expressions into the three MBA categories.
///
/// All transformations are semantic-preserving on `Z/2^w` for every `w`;
/// the corpus additionally verifies each sample by randomized evaluation.
#[derive(Debug, Clone, Default)]
pub struct Obfuscator {
    config: ObfuscatorConfig,
}

impl Obfuscator {
    /// An obfuscator with the default configuration.
    pub fn new() -> Obfuscator {
        Obfuscator::default()
    }

    /// An obfuscator with an explicit configuration.
    pub fn with_config(config: ObfuscatorConfig) -> Obfuscator {
        Obfuscator { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ObfuscatorConfig {
        &self.config
    }

    /// Obfuscates `target` into the requested category. When the target's
    /// shape cannot support the category (e.g. a `Linear` request for a
    /// non-linear target), the next applicable category is used; the
    /// *output* is what the caller should classify.
    pub fn obfuscate(&self, target: &Expr, kind: ObfuscationKind, rng: &mut impl Rng) -> Expr {
        match kind {
            ObfuscationKind::Linear => self
                .linear(target, rng)
                .unwrap_or_else(|| self.non_poly(target, rng)),
            ObfuscationKind::SemiLinear => self.semi_linear(target, rng),
            ObfuscationKind::Polynomial => self.poly(target, rng),
            ObfuscationKind::NonPolynomial => self.non_poly(target, rng),
            ObfuscationKind::Residual => self.residual(target, rng),
        }
    }

    /// Residual obfuscation: attach parity opaque zeros
    /// `z = (q·(q+1)) ∧ 1 ≡ 0` (with `q` drawn from small arithmetic
    /// forms over the target's own variables) via `+ z`, `⊕ z`, or
    /// `− z`. The `∧` over arithmetic forces `NonPolynomial`, and the
    /// ground truth is left syntactically intact underneath so an
    /// enumerative tier with a small node budget can recover it.
    fn residual(&self, target: &Expr, rng: &mut impl Rng) -> Expr {
        let vars: Vec<Ident> = target.vars().into_iter().collect();
        if vars.is_empty() {
            // Constant targets have no variables to seed the parity
            // trick with; fall back to the non-poly rewriter.
            return self.non_poly(target, rng);
        }
        let mut out = target.clone();
        for _ in 0..rng.gen_range(1..=2u32) {
            let q = parity_seed(&vars, rng);
            let z = Expr::binary(
                BinOp::And,
                q.clone() * (q + Expr::one()),
                Expr::one(),
            );
            out = match rng.gen_range(0..3u32) {
                0 => out + z,
                1 => out ^ z,
                _ => out - z,
            };
        }
        out
    }

    /// Semi-linear obfuscation: linear-obfuscate, then push non-uniform
    /// constants into the bitwise layer with two width-generic
    /// identities — the mask split `f = (f ∧ m) + (f ∧ ¬m)` and the xor
    /// wrap `f = (f ⊕ m) ⊕ m` — applied per term so the sum stays
    /// degree ≤ 1.
    fn semi_linear(&self, target: &Expr, rng: &mut impl Rng) -> Expr {
        let Some(base) = self.linear(target, rng) else {
            return self.non_poly(target, rng);
        };
        let mut terms: Vec<(i128, Expr)> = Vec::new();
        for t in flatten_sum(&base) {
            let parts = decompose_term(t.expr, t.sign);
            match parts.factors.as_slice() {
                [] => terms.push((parts.coefficient, Expr::one())),
                [f] if f.is_pure_bitwise() && rng.gen_bool(0.6) => {
                    let mask = SEMI_LINEAR_MASKS[rng.gen_range(0..SEMI_LINEAR_MASKS.len())];
                    if rng.gen_bool(0.5) {
                        // a·f = a·(f ∧ m) + a·(f ∧ ¬m). `¬m` is written
                        // as the unary complement of the constant so the
                        // identity holds at every width.
                        let not_mask = Expr::unary(UnOp::Not, Expr::constant(mask));
                        terms.push((
                            parts.coefficient,
                            Expr::binary(BinOp::And, (*f).clone(), Expr::constant(mask)),
                        ));
                        terms.push((
                            parts.coefficient,
                            Expr::binary(BinOp::And, (*f).clone(), not_mask),
                        ));
                    } else {
                        terms.push((
                            parts.coefficient,
                            Expr::binary(
                                BinOp::Xor,
                                Expr::binary(BinOp::Xor, (*f).clone(), Expr::constant(mask)),
                                Expr::constant(mask),
                            ),
                        ));
                    }
                }
                factors => {
                    let product = factors
                        .iter()
                        .map(|f| (*f).clone())
                        .reduce(|a, b| Expr::binary(BinOp::Mul, a, b))
                        .expect("non-constant term has a factor");
                    terms.push((parts.coefficient, product));
                }
            }
        }
        let mut out = mba_sig::linear_combination(&terms);
        // The random draws may have left every factor untouched; force
        // the class with a zero-sum mask split of a target variable.
        if out.mba_class() != MbaClass::SemiLinear {
            if let Some(v) = target.vars().into_iter().next() {
                let mask = SEMI_LINEAR_MASKS[rng.gen_range(0..SEMI_LINEAR_MASKS.len())];
                let var = Expr::var(v);
                let split = Expr::binary(
                    BinOp::Add,
                    Expr::binary(BinOp::And, var.clone(), Expr::constant(mask)),
                    Expr::binary(
                        BinOp::And,
                        var.clone(),
                        Expr::unary(UnOp::Not, Expr::constant(mask)),
                    ),
                );
                out = out + split - var;
            }
        }
        out
    }

    /// Linear obfuscation (signature-preserving decoys).
    fn linear(&self, target: &Expr, rng: &mut impl Rng) -> Option<Expr> {
        obfuscate_linear(
            rng,
            target,
            self.config.linear_extra_terms,
            self.config.bitwise_depth,
        )
    }

    /// Polynomial obfuscation: split every product through the
    /// Figure 1 identity, linear-obfuscate the remaining linear part,
    /// and add zero-identity × linear junk terms.
    fn poly(&self, target: &Expr, rng: &mut impl Rng) -> Expr {
        // 1. Rewrite products via a·b = (a∧b)(a∨b) + (a∧¬b)(¬a∧b).
        let split = split_products(target, rng);
        // 2. If what remains is linear, hide its signature too.
        let base = if split.mba_class() == MbaClass::Linear {
            self.linear(&split, rng).unwrap_or(split)
        } else {
            split
        };
        // 3. Add Z·L where Z ≡ 0: vanishes identically, looks like a
        //    degree-2 polynomial term.
        let vars: Vec<_> = target.vars().into_iter().collect();
        if vars.is_empty() || vars.len() > mba_sig::TruthTable::MAX_VARS {
            return base;
        }
        let mut out = base;
        for _ in 0..2 {
            if let Some(z) = zero_identity(
                rng,
                &vars,
                self.config.zero_identity_terms,
                self.config.bitwise_depth,
            ) {
                // Distribute Z over a bitwise mask so every junk term is a
                // product of pure-bitwise factors (keeping Definition 2).
                let mask = crate::bitwise::random_bitwise(rng, &vars, 1);
                let junk_terms: Vec<(i128, Expr)> = mba_expr::classify::flatten_sum(&z)
                    .iter()
                    .map(|t| {
                        let parts = mba_expr::classify::decompose_term(t.expr, t.sign);
                        let factor = match parts.factors.as_slice() {
                            [] => mask.clone(),
                            [f] => Expr::binary(BinOp::Mul, (*f).clone(), mask.clone()),
                            _ => unreachable!("zero identities are linear"),
                        };
                        (parts.coefficient, factor)
                    })
                    .collect();
                out = out + mba_sig::linear_combination(&junk_terms);
            }
        }
        out
    }

    /// Non-polynomial obfuscation: recursively apply
    /// arithmetic-to-bitwise rewrite rules at random positions, creating
    /// bitwise operators over arithmetic operands.
    fn non_poly(&self, target: &Expr, rng: &mut impl Rng) -> Expr {
        // Seed with a linear obfuscation when possible so the arithmetic
        // operands the rules wrap are themselves MBA.
        let mut current = self
            .linear(target, rng)
            .unwrap_or_else(|| target.clone());
        for _ in 0..self.config.rewrite_rounds {
            current = rewrite_random_node(&current, rng);
        }
        // Guarantee the non-poly class: wrap the whole expression once
        // if the random rounds failed to escape Definition 2.
        if current.mba_class() != MbaClass::NonPolynomial {
            current = apply_rule(&current, usize::MAX, rng).0;
            if current.mba_class() != MbaClass::NonPolynomial {
                // e = ¬(−e − 1) always leaves Definition 2 when e has any
                // arithmetic.
                current = Expr::unary(
                    UnOp::Not,
                    Expr::binary(BinOp::Sub, -current, Expr::one()),
                );
            }
        }
        current
    }
}

/// A small arithmetic expression over `vars` to seed a parity opaque
/// zero. Any integer value works (`q` and `q+1` are consecutive, so
/// their product is even), but arithmetic forms keep the zero opaque
/// to the signature-based bitwise normalization.
fn parity_seed(vars: &[Ident], rng: &mut impl Rng) -> Expr {
    let v = Expr::var(vars[rng.gen_range(0..vars.len())].clone());
    match rng.gen_range(0..4u32) {
        0 => v,
        1 => {
            let w = Expr::var(vars[rng.gen_range(0..vars.len())].clone());
            v + w
        }
        2 => {
            let w = Expr::var(vars[rng.gen_range(0..vars.len())].clone());
            v * w
        }
        _ => v + Expr::constant(rng.gen_range(1..=7i128)),
    }
}

/// Rewrites `a·b` nodes through the Figure 1 identity
/// `a·b = (a∧b)·(a∨b) + (a∧¬b)·(¬a∧b)` with probability 1/2 per node.
fn split_products(e: &Expr, rng: &mut impl Rng) -> Expr {
    mba_expr::visit::transform_bottom_up(e, &mut |node| match node {
        Expr::Binary(BinOp::Mul, a, b)
            if a.is_pure_bitwise() && b.is_pure_bitwise() && rng.gen_bool(0.8) =>
        {
            let (a, b) = (*a, *b);
            (a.clone() & b.clone()) * (a.clone() | b.clone())
                + (a.clone() & !b.clone()) * (!a & b)
        }
        other => other,
    })
}

/// The arithmetic-to-bitwise rewrite rules (all unconditional MBA
/// identities, so substituting arbitrary subexpressions is sound).
fn apply_rule(e: &Expr, position: usize, rng: &mut impl Rng) -> (Expr, bool) {
    let mut seen = 0usize;
    let mut applied = false;
    let out = mba_expr::visit::transform_bottom_up(e, &mut |node| {
        let eligible = matches!(
            node,
            Expr::Binary(BinOp::Add | BinOp::Sub | BinOp::Mul, ..)
        );
        if !eligible || applied {
            return node;
        }
        let here = seen == position || position == usize::MAX;
        seen += 1;
        if !here {
            return node;
        }
        applied = true;
        match node {
            Expr::Binary(BinOp::Add, a, b) => {
                let (a, b) = (*a, *b);
                if rng.gen_bool(0.5) {
                    // a + b = (a|b) + (a&b)
                    (a.clone() | b.clone()) + (a & b)
                } else {
                    // a + b = (a^b) + 2(a&b)
                    (a.clone() ^ b.clone()) + Expr::constant(2) * (a & b)
                }
            }
            Expr::Binary(BinOp::Sub, a, b) => {
                let (a, b) = (*a, *b);
                // a − b = (a^b) − 2(¬a & b)
                (a.clone() ^ b.clone()) - Expr::constant(2) * (!a & b)
            }
            Expr::Binary(BinOp::Mul, a, b) => {
                let (a, b) = (*a, *b);
                // a·b = (a&b)(a|b) + (a&¬b)(¬a&b)
                (a.clone() & b.clone()) * (a.clone() | b.clone())
                    + (a.clone() & !b.clone()) * (!a & b)
            }
            other => other,
        }
    });
    (out, applied)
}

/// Applies one rewrite rule at a uniformly random eligible node; returns
/// the input unchanged when no node is eligible.
fn rewrite_random_node(e: &Expr, rng: &mut impl Rng) -> Expr {
    let mut eligible = 0usize;
    mba_expr::visit::for_each_preorder(e, &mut |n| {
        if matches!(n, Expr::Binary(BinOp::Add | BinOp::Sub | BinOp::Mul, ..)) {
            eligible += 1;
        }
    });
    if eligible == 0 {
        return e.clone();
    }
    let position = rng.gen_range(0..eligible);
    apply_rule(e, position, rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::{Metrics, Valuation};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_equiv(target: &Expr, obf: &Expr, rng: &mut StdRng) {
        for _ in 0..10 {
            let v = Valuation::new()
                .with("x", rng.gen())
                .with("y", rng.gen())
                .with("z", rng.gen())
                .with("w", rng.gen());
            for width in [8u32, 32, 64] {
                assert_eq!(
                    target.eval(&v, width),
                    obf.eval(&v, width),
                    "`{target}` != `{obf}` at width {width}"
                );
            }
        }
    }

    #[test]
    fn linear_kind_produces_linear_equivalents() {
        let mut rng = StdRng::seed_from_u64(101);
        let ob = Obfuscator::new();
        for src in ["x+y", "x-y", "x^y", "x", "x+y+z"] {
            let target: Expr = src.parse().unwrap();
            let obf = ob.obfuscate(&target, ObfuscationKind::Linear, &mut rng);
            assert_eq!(obf.mba_class(), MbaClass::Linear, "{src} -> {obf}");
            check_equiv(&target, &obf, &mut rng);
        }
    }

    #[test]
    fn semi_linear_kind_produces_semi_linear_equivalents() {
        let mut rng = StdRng::seed_from_u64(505);
        let ob = Obfuscator::new();
        for src in ["x+y", "x-y", "x^y", "x", "x+y+z", "2*x + y"] {
            let target: Expr = src.parse().unwrap();
            let obf = ob.obfuscate(&target, ObfuscationKind::SemiLinear, &mut rng);
            assert_eq!(obf.mba_class(), MbaClass::SemiLinear, "{src} -> {obf}");
            check_equiv(&target, &obf, &mut rng);
        }
    }

    #[test]
    fn semi_linear_masks_are_non_uniform_at_all_widths() {
        for &m in SEMI_LINEAR_MASKS {
            for width in [8u32, 16, 32, 64] {
                let masked = mba_expr::mask(m as u64, width);
                assert_ne!(masked, 0, "mask {m} is all-zeros at width {width}");
                assert_ne!(
                    masked,
                    mba_expr::mask(u64::MAX, width),
                    "mask {m} is all-ones at width {width}"
                );
            }
        }
    }

    #[test]
    fn poly_kind_produces_poly_equivalents() {
        let mut rng = StdRng::seed_from_u64(202);
        let ob = Obfuscator::new();
        for src in ["x*y", "x+y", "x*y+z"] {
            let target: Expr = src.parse().unwrap();
            let obf = ob.obfuscate(&target, ObfuscationKind::Polynomial, &mut rng);
            assert_eq!(obf.mba_class(), MbaClass::Polynomial, "{src} -> {obf}");
            check_equiv(&target, &obf, &mut rng);
        }
    }

    #[test]
    fn nonpoly_kind_produces_nonpoly_equivalents() {
        let mut rng = StdRng::seed_from_u64(303);
        let ob = Obfuscator::new();
        for src in ["x+y", "x-y+z", "x*y", "2*x - y"] {
            let target: Expr = src.parse().unwrap();
            let obf = ob.obfuscate(&target, ObfuscationKind::NonPolynomial, &mut rng);
            assert_eq!(obf.mba_class(), MbaClass::NonPolynomial, "{src} -> {obf}");
            check_equiv(&target, &obf, &mut rng);
        }
    }

    #[test]
    fn residual_kind_lands_outside_linear_and_semi_linear() {
        let mut rng = StdRng::seed_from_u64(606);
        let ob = Obfuscator::new();
        for src in ["x+y", "x-y", "x&y", "x|y", "x^y", "2*x", "x+1", "x+y+z"] {
            let target: Expr = src.parse().unwrap();
            for round in 0..4 {
                let obf = ob.obfuscate(&target, ObfuscationKind::Residual, &mut rng);
                assert_eq!(
                    obf.mba_class(),
                    MbaClass::NonPolynomial,
                    "{src} round {round} -> {obf}"
                );
                check_equiv(&target, &obf, &mut rng);
                // The wrapper must stay small enough for a synthesis
                // tier with a modest node budget to beat.
                assert!(
                    obf.node_count() <= target.node_count() + 2 * 12,
                    "{src} -> {obf} grew too large"
                );
            }
        }
    }

    #[test]
    fn residual_on_constant_target_falls_back_soundly() {
        let mut rng = StdRng::seed_from_u64(607);
        let ob = Obfuscator::new();
        let target: Expr = "7".parse().unwrap();
        let obf = ob.obfuscate(&target, ObfuscationKind::Residual, &mut rng);
        check_equiv(&target, &obf, &mut rng);
    }

    #[test]
    fn residual_determinism_per_seed() {
        let ob = Obfuscator::new();
        let target: Expr = "x+y".parse().unwrap();
        let a = ob.obfuscate(&target, ObfuscationKind::Residual, &mut StdRng::seed_from_u64(9));
        let b = ob.obfuscate(&target, ObfuscationKind::Residual, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn obfuscation_raises_alternation() {
        let mut rng = StdRng::seed_from_u64(404);
        let ob = Obfuscator::new();
        let target: Expr = "x+y".parse().unwrap();
        for kind in [
            ObfuscationKind::Linear,
            ObfuscationKind::Polynomial,
            ObfuscationKind::NonPolynomial,
        ] {
            let obf = ob.obfuscate(&target, kind, &mut rng);
            let m = Metrics::of(&obf);
            assert!(
                m.alternation >= 3,
                "{kind} obfuscation too shallow: {obf} (alternation {})",
                m.alternation
            );
        }
    }

    #[test]
    fn rewrite_rules_are_identities() {
        let mut rng = StdRng::seed_from_u64(7);
        for src in ["x + y", "x - y", "x * y", "(x*y) + (z - x)"] {
            let e: Expr = src.parse().unwrap();
            for _ in 0..10 {
                let rewritten = rewrite_random_node(&e, &mut rng);
                check_equiv(&e, &rewritten, &mut rng);
            }
        }
    }

    #[test]
    fn rewrite_skips_expressions_without_arithmetic() {
        let mut rng = StdRng::seed_from_u64(8);
        let e: Expr = "x & y".parse().unwrap();
        assert_eq!(rewrite_random_node(&e, &mut rng), e);
    }

    #[test]
    fn determinism_per_seed() {
        let ob = Obfuscator::new();
        let target: Expr = "x+y".parse().unwrap();
        let a = ob.obfuscate(&target, ObfuscationKind::NonPolynomial, &mut StdRng::seed_from_u64(1));
        let b = ob.obfuscate(&target, ObfuscationKind::NonPolynomial, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
