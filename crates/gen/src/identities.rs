//! Linear MBA identity construction — the Zhou et al. method of §2.1
//! (Example 1) plus signature-preserving linear obfuscation.

use mba_expr::{Expr, Ident};
use mba_linalg::Matrix;
use mba_sig::{linear_combination, SignatureVector, TruthTable};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::bitwise::random_bitwise_set;

/// Builds a linear MBA expression that is identically zero, by solving
/// `M·C = 0` on the truth-table matrix of randomly chosen bitwise
/// expressions (plus the all-ones `−1` column) and using a random
/// nullspace vector as coefficients — exactly Example 1's construction.
///
/// Returns `None` when the random columns happen to be linearly
/// independent (no nontrivial kernel); callers retry with more terms.
///
/// # Panics
///
/// Panics if `vars` is empty or holds more than
/// [`TruthTable::MAX_VARS`] variables.
pub fn zero_identity(
    rng: &mut impl Rng,
    vars: &[Ident],
    num_bitwise_terms: usize,
    depth: usize,
) -> Option<Expr> {
    assert!(
        (1..=TruthTable::MAX_VARS).contains(&vars.len()),
        "variable count out of range"
    );
    let exprs = random_bitwise_set(rng, vars, depth, num_bitwise_terms);
    let mut columns: Vec<Vec<i128>> = Vec::with_capacity(exprs.len() + 1);
    for e in &exprs {
        columns.push(TruthTable::of(e, vars).expect("bitwise by construction").column());
    }
    // The −1 column (all ones) keeps constants expressible.
    columns.push(vec![1; 1 << vars.len()]);
    let kernel = Matrix::from_i128_columns(&columns).integer_kernel();
    if kernel.is_empty() {
        return None;
    }
    // Random element of the kernel lattice: a small random combination
    // of basis vectors (never the zero vector).
    let mut coeffs = vec![0i128; columns.len()];
    for basis_vec in &kernel {
        let scale = *[-2i128, -1, 1, 2, 3].choose(rng).expect("non-empty");
        if rng.gen_bool(0.7) {
            for (c, b) in coeffs.iter_mut().zip(basis_vec) {
                *c += scale * b;
            }
        }
    }
    if coeffs.iter().all(|&c| c == 0) {
        coeffs.clone_from(&kernel[0]);
    }
    let mut terms: Vec<(i128, Expr)> = exprs
        .into_iter()
        .zip(coeffs.iter().copied())
        .map(|(e, c)| (c, e))
        .collect();
    terms.push((*coeffs.last().expect("non-empty"), Expr::minus_one()));
    terms.shuffle(rng);
    Some(linear_combination(&terms))
}

/// Produces a complex linear MBA equivalent to `target` (which must be a
/// linear MBA over at most [`TruthTable::MAX_VARS`] variables).
///
/// Construction: draw `extra_terms` random bitwise expressions with
/// random coefficients, subtract their combined signature from the
/// target's, and express the residue in the normalized `∧`-basis — the
/// sum then has exactly the target's signature, hence is equivalent by
/// Theorem 1.
///
/// Returns `None` when `target` is not linear over its variables.
pub fn obfuscate_linear(
    rng: &mut impl Rng,
    target: &Expr,
    extra_terms: usize,
    depth: usize,
) -> Option<Expr> {
    let vars: Vec<Ident> = target.vars().into_iter().collect();
    if vars.is_empty() || vars.len() > TruthTable::MAX_VARS {
        return None;
    }
    let target_sig = SignatureVector::of_linear(target, &vars).ok()?;

    let decoys = random_bitwise_set(rng, &vars, depth, extra_terms);
    let mut terms: Vec<(i128, Expr)> = Vec::new();
    let mut decoy_sig = vec![0i128; 1 << vars.len()];
    for e in decoys {
        let coef = loop {
            let c = rng.gen_range(-9i128..=9);
            if c != 0 {
                break c;
            }
        };
        let col = TruthTable::of(&e, &vars).expect("bitwise").column();
        for (s, v) in decoy_sig.iter_mut().zip(&col) {
            *s += coef * v;
        }
        terms.push((coef, e));
    }

    // Residue = target − decoys, expressed in the normalized basis.
    let residue: Vec<i128> = target_sig
        .components()
        .iter()
        .zip(&decoy_sig)
        .map(|(t, d)| t - d)
        .collect();
    let residue_sig = SignatureVector::from_components(vars.len(), residue);
    let coeffs = residue_sig.normalized_coefficients();
    for (s, &c) in coeffs.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if s == 0 {
            terms.push((-c, Expr::one()));
        } else {
            terms.push((c, and_of_subset(s, &vars)));
        }
    }

    terms.shuffle(rng);
    Some(linear_combination(&terms))
}

/// Conjunction of the variables selected by row-index mask `s` (first
/// variable = most significant bit), matching the signature convention.
fn and_of_subset(s: usize, vars: &[Ident]) -> Expr {
    let t = vars.len();
    let mut selected = (0..t).filter(|j| s & (1 << (t - 1 - j)) != 0);
    let first = selected.next().expect("non-empty subset");
    selected.fold(Expr::var(vars[first].clone()), |acc, j| {
        acc & Expr::var(vars[j].clone())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vars2() -> Vec<Ident> {
        vec![Ident::new("x"), Ident::new("y")]
    }

    fn random_valuation(rng: &mut StdRng) -> Valuation {
        Valuation::new()
            .with("x", rng.gen())
            .with("y", rng.gen())
            .with("z", rng.gen())
    }

    #[test]
    fn zero_identities_evaluate_to_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut produced = 0;
        for _ in 0..40 {
            if let Some(z) = zero_identity(&mut rng, &vars2(), 5, 2) {
                produced += 1;
                for _ in 0..8 {
                    let v = random_valuation(&mut rng);
                    for w in [8, 32, 64] {
                        assert_eq!(z.eval(&v, w), 0, "`{z}` not zero at width {w}");
                    }
                }
            }
        }
        // With 5 columns + (−1) over 4 rows the kernel is almost always
        // non-trivial.
        assert!(produced >= 35, "only {produced}/40 identities produced");
    }

    #[test]
    fn zero_identity_is_nontrivial() {
        let mut rng = StdRng::seed_from_u64(3);
        let z = zero_identity(&mut rng, &vars2(), 6, 2).expect("kernel exists");
        assert!(z != Expr::zero(), "degenerate zero identity");
        assert!(z.node_count() > 3);
    }

    #[test]
    fn linear_obfuscation_preserves_semantics() {
        let mut rng = StdRng::seed_from_u64(21);
        for target_src in ["x + y", "x - y", "x ^ y", "3*x - 2", "x & y"] {
            let target: Expr = target_src.parse().unwrap();
            let obf = obfuscate_linear(&mut rng, &target, 6, 2).expect("linear target");
            assert_ne!(obf, target, "obfuscation of {target_src} is trivial");
            for _ in 0..8 {
                let v = random_valuation(&mut rng);
                for w in [8, 32, 64] {
                    assert_eq!(
                        target.eval(&v, w),
                        obf.eval(&v, w),
                        "{target_src} -> {obf} differs at width {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn linear_obfuscation_stays_linear() {
        let mut rng = StdRng::seed_from_u64(77);
        let target: Expr = "x + y".parse().unwrap();
        for _ in 0..10 {
            let obf = obfuscate_linear(&mut rng, &target, 8, 2).unwrap();
            assert_eq!(obf.mba_class(), mba_expr::MbaClass::Linear);
        }
    }

    #[test]
    fn obfuscation_rejects_nonlinear_targets() {
        let mut rng = StdRng::seed_from_u64(5);
        let target: Expr = "x * y".parse().unwrap();
        assert!(obfuscate_linear(&mut rng, &target, 4, 2).is_none());
        let no_vars: Expr = "7".parse().unwrap();
        assert!(obfuscate_linear(&mut rng, &no_vars, 4, 2).is_none());
    }

    #[test]
    fn obfuscation_grows_complexity() {
        let mut rng = StdRng::seed_from_u64(9);
        let target: Expr = "x + y".parse().unwrap();
        let obf = obfuscate_linear(&mut rng, &target, 10, 2).unwrap();
        let m = mba_expr::Metrics::of(&obf);
        assert!(m.alternation >= 5, "alternation only {}", m.alternation);
        assert!(m.num_terms >= 8, "terms only {}", m.num_terms);
    }
}
