//! Seeded random pure-bitwise expression generation.

use mba_expr::{BinOp, Expr, Ident, UnOp};
use rand::Rng;

/// Generates a random pure bitwise expression over `vars` with roughly
/// `depth` levels of operators.
///
/// Depth 0 yields a bare (possibly negated) variable. Every variable in
/// the result comes from `vars`; not all of `vars` need occur.
///
/// # Panics
///
/// Panics if `vars` is empty.
pub fn random_bitwise(rng: &mut impl Rng, vars: &[Ident], depth: usize) -> Expr {
    assert!(!vars.is_empty(), "need at least one variable");
    if depth == 0 {
        let v = Expr::var(vars[rng.gen_range(0..vars.len())].clone());
        return if rng.gen_bool(0.3) {
            Expr::unary(UnOp::Not, v)
        } else {
            v
        };
    }
    match rng.gen_range(0..4) {
        0 => Expr::unary(UnOp::Not, random_bitwise(rng, vars, depth - 1)),
        1 => binop(rng, BinOp::And, vars, depth),
        2 => binop(rng, BinOp::Or, vars, depth),
        _ => binop(rng, BinOp::Xor, vars, depth),
    }
}

fn binop(rng: &mut impl Rng, op: BinOp, vars: &[Ident], depth: usize) -> Expr {
    let left_depth = rng.gen_range(0..depth);
    let right_depth = rng.gen_range(0..depth);
    Expr::binary(
        op,
        random_bitwise(rng, vars, left_depth),
        random_bitwise(rng, vars, right_depth),
    )
}

/// Generates `count` *distinct* random bitwise expressions (distinct as
/// trees, not necessarily as functions).
pub fn random_bitwise_set(
    rng: &mut impl Rng,
    vars: &[Ident],
    depth: usize,
    count: usize,
) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::with_capacity(count);
    let mut attempts = 0;
    while out.len() < count && attempts < count * 50 {
        attempts += 1;
        let e = random_bitwise(rng, vars, depth);
        if !out.contains(&e) {
            out.push(e);
        }
    }
    // Fall back to allowing duplicates if the space is tiny (e.g. one
    // variable at depth 0).
    while out.len() < count {
        out.push(random_bitwise(rng, vars, depth));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn vars() -> Vec<Ident> {
        vec![Ident::new("x"), Ident::new("y"), Ident::new("z")]
    }

    #[test]
    fn generated_expressions_are_pure_bitwise() {
        let mut rng = StdRng::seed_from_u64(1);
        for depth in 0..5 {
            for _ in 0..50 {
                let e = random_bitwise(&mut rng, &vars(), depth);
                assert!(e.is_pure_bitwise(), "not bitwise: {e}");
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = random_bitwise(&mut StdRng::seed_from_u64(42), &vars(), 3);
        let b = random_bitwise(&mut StdRng::seed_from_u64(42), &vars(), 3);
        assert_eq!(a, b);
        let c = random_bitwise(&mut StdRng::seed_from_u64(43), &vars(), 3);
        assert_ne!(a, c, "different seeds should (almost surely) differ");
    }

    #[test]
    fn depth_zero_is_a_literal() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let e = random_bitwise(&mut rng, &vars(), 0);
            assert!(e.node_count() <= 2, "too big for depth 0: {e}");
        }
    }

    #[test]
    fn random_set_is_distinct_when_possible() {
        let mut rng = StdRng::seed_from_u64(9);
        let set = random_bitwise_set(&mut rng, &vars(), 2, 8);
        assert_eq!(set.len(), 8);
        for (i, a) in set.iter().enumerate() {
            for b in &set[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one variable")]
    fn empty_vars_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        random_bitwise(&mut rng, &[], 1);
    }
}
