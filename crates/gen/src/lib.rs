//! MBA obfuscation and evaluation-corpus generation.
//!
//! The paper evaluates on 3 000 MBA identity equations collected from
//! Syntia, Eyrolles' thesis, Tigress, the Zhou et al. papers, Hacker's
//! Delight and the HAKMEM memo — all of which generate (or catalog)
//! identities with the *same underlying construction*: solve the
//! truth-table nullspace system of §2.1 Example 1 to obtain a linear MBA
//! that is identically zero, then add it to (or multiply it into) a
//! target expression. This crate reimplements that construction:
//!
//! * [`bitwise`] — seeded random pure-bitwise expression generation,
//! * [`identities`] — zero identities via [`mba_linalg`] nullspaces, and
//!   signature-preserving linear obfuscation,
//! * [`obfuscate`] — the linear / polynomial / non-polynomial obfuscators
//!   (Definitions 1–2 and the recursive rewriting that produces
//!   non-poly MBA),
//! * [`corpus`] — the deterministic 3 × 1000 evaluation corpus with
//!   Table 1-scale complexity,
//! * [`random`] — structural random-AST generation over the full MBA
//!   grammar (no known ground truth), feeding the `mba-verify`
//!   differential fuzzer.
//!
//! Every generated sample carries its ground truth and is verified by
//! randomized evaluation at construction time.
//!
//! ```
//! use mba_gen::obfuscate::{Obfuscator, ObfuscationKind};
//! use mba_expr::{Expr, Valuation};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let target: Expr = "x + y".parse().unwrap();
//! let obf = Obfuscator::new().obfuscate(&target, ObfuscationKind::Linear, &mut rng);
//! let v = Valuation::new().with("x", 100).with("y", 23);
//! assert_eq!(obf.eval(&v, 64), 123);
//! assert_ne!(obf, target);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitwise;
pub mod corpus;
pub mod identities;
pub mod obfuscate;
pub mod random;
pub mod rules;

pub use corpus::{Corpus, CorpusConfig, Sample};
pub use obfuscate::{ObfuscationKind, Obfuscator};
pub use random::{random_expr, RandomExprConfig};
