//! Integration tests for the `mba_obfuscate` command-line tool.

use std::process::Command;

use mba_expr::{Expr, Valuation};

fn run(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_mba_obfuscate"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn output_is_equivalent_to_the_input() {
    for kind in ["linear", "poly", "non-poly"] {
        let (ok, stdout, _) = run(&["--kind", kind, "--seed", "9", "x + y"]);
        assert!(ok, "{kind} failed");
        let obf: Expr = stdout.trim().parse().expect("output parses");
        let v = Valuation::new().with("x", 1000).with("y", 234);
        assert_eq!(obf.eval(&v, 64), 1234, "{kind}: {obf}");
        assert_ne!(obf.to_string(), "x+y", "{kind} output is trivial");
    }
}

#[test]
fn seeds_are_reproducible() {
    let (_, a, _) = run(&["--seed", "5", "x - y"]);
    let (_, b, _) = run(&["--seed", "5", "x - y"]);
    let (_, c, _) = run(&["--seed", "6", "x - y"]);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

#[test]
fn rejects_bad_usage() {
    assert!(!run(&[]).0);
    assert!(!run(&["--kind", "mystery", "x"]).0);
    assert!(!run(&["--seed", "NaN", "x"]).0);
    let (ok, _, stderr) = run(&["((("]);
    assert!(!ok);
    assert!(stderr.contains("cannot parse"));
}
