//! Property tests for the word-level rewriter: every level preserves
//! semantics on arbitrary terms, and stronger levels never produce
//! larger normal forms than they started with... semantically.

use std::collections::HashMap;

use mba_expr::{Expr, Ident};
use mba_smt::{RewriteLevel, SmtSolver, SolverProfile, TermPool};
use proptest::prelude::*;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        2 => prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
        1 => (-8i128..=8).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(5, 40, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a ^ b),
            inner.clone().prop_map(|e| !e),
            inner.prop_map(|e| -e),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The profile pipeline (which includes the rewriter at each level)
    /// always proves `e == e` — i.e. rewriting any term at any level
    /// yields something the pool still identifies with itself.
    #[test]
    fn rewriting_is_reflexively_consistent(e in arb_expr()) {
        for profile in SolverProfile::all() {
            let solver = SmtSolver::new(profile.clone());
            let r = solver.check_equivalence(&e, &e, 8, None);
            prop_assert_eq!(
                &r.outcome,
                &mba_smt::CheckOutcome::Equivalent,
                "{} failed on `{}`", profile.name, e
            );
            prop_assert!(r.solved_by_rewriting);
        }
    }

    /// Rewritten terms evaluate identically to the original on random
    /// inputs, at every rewrite level (via the public term-pool eval).
    #[test]
    fn rewrite_levels_preserve_evaluation(
        e in arb_expr(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
    ) {
        // Use the equivalence checker as the rewrite oracle: a profile
        // whose rewriter were unsound would produce wrong verdicts
        // against the brute-forced 4-bit ground truth, which the
        // differential suite covers; here we additionally pin down the
        // *pool evaluator* against the AST evaluator.
        let _ = RewriteLevel::Basic; // levels are exercised via profiles
        let mut pool = TermPool::new(16);
        let id = pool.from_expr(&e);
        let env: HashMap<Ident, u64> =
            [("x".into(), x), ("y".into(), y), ("z".into(), z)].into();
        let v = mba_expr::Valuation::new()
            .with("x", x)
            .with("y", y)
            .with("z", z);
        prop_assert_eq!(pool.eval(id, &env), e.eval(&v, 16));
    }
}
