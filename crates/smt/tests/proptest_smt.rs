//! Differential testing of the SMT pipeline: at 4 bits with two
//! variables, equivalence is brute-forcible (256 input pairs), so every
//! verdict can be checked exactly — across all three solver profiles.

use mba_expr::{Expr, Valuation};
use mba_smt::{CheckOutcome, SmtSolver, SolverProfile};
use proptest::prelude::*;

const WIDTH: u32 = 4;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        2 => prop_oneof![Just("x"), Just("y")].prop_map(Expr::var),
        1 => (-4i128..=4).prop_map(Expr::Const),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a + b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a - b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a * b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a & b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a | b),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a ^ b),
            inner.clone().prop_map(|e| !e),
            inner.prop_map(|e| -e),
        ]
    })
}

fn brute_force_equivalent(a: &Expr, b: &Expr) -> bool {
    for x in 0..(1u64 << WIDTH) {
        for y in 0..(1u64 << WIDTH) {
            let v = Valuation::new().with("x", x).with("y", y);
            if a.eval(&v, WIDTH) != b.eval(&v, WIDTH) {
                return false;
            }
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every profile's verdict matches brute force, and counterexamples
    /// are genuine witnesses.
    #[test]
    fn verdicts_match_brute_force(a in arb_expr(), b in arb_expr()) {
        let expected = brute_force_equivalent(&a, &b);
        for profile in SolverProfile::all() {
            let solver = SmtSolver::new(profile.clone());
            let result = solver.check_equivalence(&a, &b, WIDTH, None);
            match &result.outcome {
                CheckOutcome::Equivalent => {
                    prop_assert!(expected, "{}: false Equivalent for `{}` vs `{}`",
                                 profile.name, a, b);
                }
                CheckOutcome::NotEquivalent(cex) => {
                    prop_assert!(!expected, "{}: false NotEquivalent for `{}` vs `{}`",
                                 profile.name, a, b);
                    let v = cex.to_valuation();
                    prop_assert_ne!(a.eval(&v, WIDTH), b.eval(&v, WIDTH),
                                    "{}: bogus witness {}", profile.name, cex);
                }
                CheckOutcome::Timeout => {
                    return Err(TestCaseError::fail("unexpected timeout without budget"));
                }
            }
        }
    }

    /// Rewriting-only verdicts (no SAT search) are always correct.
    #[test]
    fn rewrite_shortcuts_are_sound(a in arb_expr()) {
        // a vs a must close by rewriting alone for every profile.
        for profile in SolverProfile::all() {
            let solver = SmtSolver::new(profile.clone());
            let r = solver.check_equivalence(&a, &a, WIDTH, None);
            prop_assert_eq!(&r.outcome, &CheckOutcome::Equivalent);
            prop_assert!(r.solved_by_rewriting);
        }
    }
}
