//! The word-level rewriter.
//!
//! Implements the three [`RewriteLevel`]s. All rules are sound at any
//! width; none of them crosses the bitwise/arithmetic boundary (there is
//! no rule relating `∧`/`∨`/`⊕` to `+`/`−`/`×`), which is exactly why
//! real solvers bog down on MBA and why the paper's preprocessing helps.

use std::collections::HashMap;

use mba_expr::{BinOp, UnOp};

use crate::profile::RewriteLevel;
use crate::term::{TermId, TermKind, TermPool};

/// Rewrites `id` to a (hopefully smaller) equivalent term in `pool`.
pub(crate) fn rewrite(pool: &mut TermPool, id: TermId, level: RewriteLevel) -> TermId {
    let mut rw = Rewriter {
        pool,
        level,
        cache: HashMap::new(),
    };
    rw.rewrite(id)
}

struct Rewriter<'p> {
    pool: &'p mut TermPool,
    level: RewriteLevel,
    cache: HashMap<TermId, TermId>,
}

impl Rewriter<'_> {
    fn width_mask(&self) -> u64 {
        mba_expr::mask(u64::MAX, self.pool.width())
    }

    fn rewrite(&mut self, id: TermId) -> TermId {
        if let Some(&done) = self.cache.get(&id) {
            return done;
        }
        let out = match self.pool.kind(id).clone() {
            TermKind::Const(_) | TermKind::Var(_) => id,
            TermKind::Unary(op, a) => {
                let a = self.rewrite(a);
                self.simplify_unary(op, a)
            }
            TermKind::Binary(op, a, b) => {
                let a = self.rewrite(a);
                let b = self.rewrite(b);
                self.simplify_binary(op, a, b)
            }
        };
        let out = if self.level >= RewriteLevel::Aggressive {
            self.collect_linear(out)
        } else {
            out
        };
        self.cache.insert(id, out);
        out
    }

    fn constant_of(&self, id: TermId) -> Option<u64> {
        match self.pool.kind(id) {
            TermKind::Const(c) => Some(*c),
            _ => None,
        }
    }

    fn simplify_unary(&mut self, op: UnOp, a: TermId) -> TermId {
        if let Some(c) = self.constant_of(a) {
            let v = match op {
                UnOp::Neg => c.wrapping_neg(),
                UnOp::Not => !c,
            };
            return self.pool.constant(v);
        }
        // Involutions: ¬¬x = x, −−x = x.
        if let TermKind::Unary(inner_op, inner) = self.pool.kind(a) {
            if *inner_op == op {
                return *inner;
            }
        }
        self.pool.intern(TermKind::Unary(op, a))
    }

    fn simplify_binary(&mut self, op: BinOp, mut a: TermId, mut b: TermId) -> TermId {
        let mask = self.width_mask();
        // Constant folding.
        if let (Some(x), Some(y)) = (self.constant_of(a), self.constant_of(b)) {
            let v = match op {
                BinOp::Add => x.wrapping_add(y),
                BinOp::Sub => x.wrapping_sub(y),
                BinOp::Mul => x.wrapping_mul(y),
                BinOp::And => x & y,
                BinOp::Or => x | y,
                BinOp::Xor => x ^ y,
            };
            return self.pool.constant(v);
        }
        if self.level >= RewriteLevel::Standard && op.is_commutative() && a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let ca = self.constant_of(a);
        let cb = self.constant_of(b);
        // Unit and annihilator laws (Basic).
        match op {
            BinOp::Add => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
            }
            BinOp::Sub => {
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(0) {
                    return self.simplify_unary(UnOp::Neg, b);
                }
            }
            BinOp::Mul => {
                if ca == Some(1) {
                    return b;
                }
                if cb == Some(1) {
                    return a;
                }
                if ca == Some(0) || cb == Some(0) {
                    return self.pool.constant(0);
                }
            }
            BinOp::And => {
                if ca == Some(mask) {
                    return b;
                }
                if cb == Some(mask) {
                    return a;
                }
                if ca == Some(0) || cb == Some(0) {
                    return self.pool.constant(0);
                }
            }
            BinOp::Or => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
                if ca == Some(mask) || cb == Some(mask) {
                    return self.pool.constant(mask);
                }
            }
            BinOp::Xor => {
                if ca == Some(0) {
                    return b;
                }
                if cb == Some(0) {
                    return a;
                }
            }
        }
        // Standard-level structural laws.
        if self.level >= RewriteLevel::Standard {
            if a == b {
                match op {
                    BinOp::And | BinOp::Or => return a,
                    BinOp::Xor => return self.pool.constant(0),
                    BinOp::Sub => return self.pool.constant(0),
                    _ => {}
                }
            }
            // Complement laws: x op ¬x.
            let complement = |pool: &TermPool, u: TermId, v: TermId| {
                matches!(pool.kind(v), TermKind::Unary(UnOp::Not, inner) if *inner == u)
            };
            if complement(self.pool, a, b) || complement(self.pool, b, a) {
                match op {
                    BinOp::And => return self.pool.constant(0),
                    BinOp::Or | BinOp::Xor => return self.pool.constant(mask),
                    _ => {}
                }
            }
        }
        self.pool.intern(TermKind::Binary(op, a, b))
    }

    /// Aggressive-level linear collection: flatten `+`, `−`, unary `−`
    /// and `const·t` chains over already-rewritten children, cancel like
    /// atoms, and rebuild a canonical sum. Proves pure-arithmetic
    /// cancellations (e.g. `x + y − x − y = 0`) without touching any
    /// bitwise structure.
    fn collect_linear(&mut self, id: TermId) -> TermId {
        if !matches!(
            self.pool.kind(id),
            TermKind::Binary(BinOp::Add | BinOp::Sub, ..) | TermKind::Unary(UnOp::Neg, _)
        ) {
            return id;
        }
        let mask = self.width_mask();
        let mut atoms: HashMap<TermId, u64> = HashMap::new();
        let mut constant = 0u64;
        self.collect_into(id, 1, &mut atoms, &mut constant);

        // Canonical rebuild: atoms sorted by id, constant last.
        // Coefficients in the "negative" half of the ring rebuild as
        // subtractions of their small magnitude — `a − b`, never
        // `a + (2^w − 1)·b`, which would bit-blast into a full-width
        // constant multiplier.
        let half = 1u64 << (self.pool.width() - 1);
        let mut entries: Vec<(TermId, u64)> = atoms
            .into_iter()
            .filter(|&(_, c)| c & mask != 0)
            .collect();
        entries.sort_by_key(|&(t, _)| t);
        let mut acc: Option<TermId> = None;
        for (atom, coef) in entries {
            let coef = coef & mask;
            let negative = coef >= half;
            let magnitude = if negative { coef.wrapping_neg() & mask } else { coef };
            let term = if magnitude == 1 {
                atom
            } else {
                let c = self.pool.constant(magnitude);
                // Keep Mul(Const, t) canonical: constant first.
                self.pool.intern(TermKind::Binary(BinOp::Mul, c, atom))
            };
            acc = Some(match (acc, negative) {
                (None, false) => term,
                (None, true) => self.pool.intern(TermKind::Unary(UnOp::Neg, term)),
                (Some(prev), false) => {
                    self.pool.intern(TermKind::Binary(BinOp::Add, prev, term))
                }
                (Some(prev), true) => {
                    self.pool.intern(TermKind::Binary(BinOp::Sub, prev, term))
                }
            });
        }
        let constant = constant & mask;
        if constant != 0 || acc.is_none() {
            acc = Some(match acc {
                None => self.pool.constant(constant),
                Some(prev) => {
                    if constant >= half {
                        let c = self.pool.constant(constant.wrapping_neg() & mask);
                        self.pool.intern(TermKind::Binary(BinOp::Sub, prev, c))
                    } else {
                        let c = self.pool.constant(constant);
                        self.pool.intern(TermKind::Binary(BinOp::Add, prev, c))
                    }
                }
            });
        }
        acc.expect("set above")
    }

    fn collect_into(
        &mut self,
        id: TermId,
        sign: i64,
        atoms: &mut HashMap<TermId, u64>,
        constant: &mut u64,
    ) {
        let factor = sign as u64; // 1 or -1 (two's complement)
        match self.pool.kind(id).clone() {
            TermKind::Const(c) => *constant = constant.wrapping_add(c.wrapping_mul(factor)),
            TermKind::Binary(BinOp::Add, a, b) => {
                self.collect_into(a, sign, atoms, constant);
                self.collect_into(b, sign, atoms, constant);
            }
            TermKind::Binary(BinOp::Sub, a, b) => {
                self.collect_into(a, sign, atoms, constant);
                self.collect_into(b, -sign, atoms, constant);
            }
            TermKind::Unary(UnOp::Neg, a) => self.collect_into(a, -sign, atoms, constant),
            TermKind::Binary(BinOp::Mul, a, b) => {
                // const · t (either side) contributes t with a scaled
                // coefficient; anything else is an atom.
                match (self.constant_of(a), self.constant_of(b)) {
                    (Some(c), None) => {
                        let slot = atoms.entry(b).or_insert(0);
                        *slot = slot.wrapping_add(c.wrapping_mul(factor));
                    }
                    (None, Some(c)) => {
                        let slot = atoms.entry(a).or_insert(0);
                        *slot = slot.wrapping_add(c.wrapping_mul(factor));
                    }
                    _ => {
                        let slot = atoms.entry(id).or_insert(0);
                        *slot = slot.wrapping_add(factor);
                    }
                }
            }
            _ => {
                let slot = atoms.entry(id).or_insert(0);
                *slot = slot.wrapping_add(factor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Expr;

    fn rw(src: &str, level: RewriteLevel) -> (TermPool, TermId) {
        let mut pool = TermPool::new(8);
        let e: Expr = src.parse().unwrap();
        let id = pool.from_expr(&e);
        let out = rewrite(&mut pool, id, level);
        (pool, out)
    }

    fn is_const(pool: &TermPool, id: TermId, v: u64) -> bool {
        pool.kind(id) == &TermKind::Const(v)
    }

    #[test]
    fn basic_folds_constants_and_units() {
        let (p, t) = rw("3 + 4", RewriteLevel::Basic);
        assert!(is_const(&p, t, 7));
        let (p, t) = rw("x * 0", RewriteLevel::Basic);
        assert!(is_const(&p, t, 0));
        let (p, t) = rw("(x + 0) & -1", RewriteLevel::Basic);
        assert_eq!(p.kind(t), &TermKind::Var("x".into()));
    }

    #[test]
    fn basic_does_not_know_idempotence() {
        let (p, t) = rw("x & x", RewriteLevel::Basic);
        assert!(matches!(p.kind(t), TermKind::Binary(BinOp::And, ..)));
        let (p, t) = rw("x & x", RewriteLevel::Standard);
        assert_eq!(p.kind(t), &TermKind::Var("x".into()));
    }

    #[test]
    fn standard_structural_laws() {
        for (src, expected) in [
            ("x ^ x", 0u64),
            ("x - x", 0),
            ("x & ~x", 0),
            ("x | ~x", 0xff),
            ("x ^ ~x", 0xff),
        ] {
            let (p, t) = rw(src, RewriteLevel::Standard);
            assert!(is_const(&p, t, expected), "{src}");
        }
    }

    #[test]
    fn standard_normalizes_commutative_operands() {
        let mut pool = TermPool::new(8);
        let a = pool.from_expr(&"x + y".parse::<Expr>().unwrap());
        let b = pool.from_expr(&"y + x".parse::<Expr>().unwrap());
        let ra = rewrite(&mut pool, a, RewriteLevel::Standard);
        let rb = rewrite(&mut pool, b, RewriteLevel::Standard);
        assert_eq!(ra, rb, "x+y and y+x must normalize identically");
    }

    #[test]
    fn aggressive_cancels_linear_arithmetic() {
        let (p, t) = rw("x + y - x - y", RewriteLevel::Aggressive);
        assert!(is_const(&p, t, 0));
        let (p, t) = rw("2*x + 3*x", RewriteLevel::Aggressive);
        // 5·x in canonical Mul(Const, Var) form.
        match p.kind(t) {
            TermKind::Binary(BinOp::Mul, c, v) => {
                assert!(is_const(&p, *c, 5));
                assert_eq!(p.kind(*v), &TermKind::Var("x".into()));
            }
            other => panic!("expected 5*x, got {other:?}"),
        }
    }

    #[test]
    fn aggressive_collects_through_bitwise_atoms() {
        // (x&y) + z - (x&y) = z: the AND term is an atom that cancels.
        let (p, t) = rw("(x & y) + z - (x & y)", RewriteLevel::Aggressive);
        assert_eq!(p.kind(t), &TermKind::Var("z".into()));
    }

    #[test]
    fn aggressive_does_not_cross_the_mba_boundary() {
        // (x|y) + (x&y) = x + y is TRUE but requires MBA knowledge;
        // word-level rewriting must NOT prove it.
        let mut pool = TermPool::new(8);
        let a = pool.from_expr(&"(x|y) + (x&y)".parse::<Expr>().unwrap());
        let b = pool.from_expr(&"x + y".parse::<Expr>().unwrap());
        let ra = rewrite(&mut pool, a, RewriteLevel::Aggressive);
        let rb = rewrite(&mut pool, b, RewriteLevel::Aggressive);
        assert_ne!(ra, rb, "rewriter crossed the bitwise/arithmetic boundary");
    }

    #[test]
    fn rewriting_preserves_semantics() {
        use std::collections::HashMap;
        let cases = [
            "x + y - x - y",
            "2*x + 3*x - x",
            "(x & y) | (x & y)",
            "~(~x) + -(-y)",
            "x - (y - x)",
            "3*(x ^ y) - (x ^ y)",
        ];
        for src in cases {
            for level in [RewriteLevel::Basic, RewriteLevel::Standard, RewriteLevel::Aggressive] {
                let mut pool = TermPool::new(8);
                let e: Expr = src.parse().unwrap();
                let id = pool.from_expr(&e);
                let out = rewrite(&mut pool, id, level);
                for (x, y) in [(0u64, 0u64), (255, 1), (170, 85), (7, 200)] {
                    let env: HashMap<mba_expr::Ident, u64> =
                        [("x".into(), x), ("y".into(), y)].into();
                    assert_eq!(
                        pool.eval(id, &env),
                        pool.eval(out, &env),
                        "{src} at ({x},{y}) level {level:?}"
                    );
                }
            }
        }
    }
}
