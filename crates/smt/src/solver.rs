//! The equivalence-checking driver.

use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use mba_expr::{Expr, Ident, Valuation};
use mba_sat::{SolveResult, SolverStats};

use crate::bitblast::Blaster;
use crate::profile::SolverProfile;
use crate::rewrite::rewrite;
use crate::term::TermPool;

/// A satisfying assignment witnessing that two expressions differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    assignments: Vec<(Ident, u64)>,
}

impl Counterexample {
    /// The variable assignments, sorted by name.
    pub fn assignments(&self) -> &[(Ident, u64)] {
        &self.assignments
    }

    /// Converts to a [`Valuation`] for re-evaluation.
    pub fn to_valuation(&self) -> Valuation {
        self.assignments.iter().cloned().collect()
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .assignments
            .iter()
            .map(|(v, x)| format!("{v}={x}"))
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

/// Resource limits for one budgeted equivalence query
/// ([`SmtSolver::check_equivalence_budgeted`]).
///
/// All limits are optional and independent; whichever is exhausted
/// first turns the verdict into [`CheckOutcome::Timeout`]. The conflict
/// and propagation budgets are deterministic (the same query with the
/// same budget always stops at the same point), which is what oracle
/// stacks and CI want; the wall-clock limit is the safety net for
/// pathological blow-ups. The propagation budget exists because a
/// unit-propagation-heavy miter can burn arbitrary time *between*
/// conflicts, which a conflict budget alone never observes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MiterBudget {
    /// Maximum SAT conflicts before giving up.
    pub conflicts: Option<u64>,
    /// Maximum SAT unit propagations before giving up.
    pub propagations: Option<u64>,
    /// Maximum wall-clock time before giving up.
    pub timeout: Option<Duration>,
}

impl MiterBudget {
    /// An unlimited budget (the query runs to completion).
    pub fn unlimited() -> MiterBudget {
        MiterBudget::default()
    }

    /// A deterministic conflict-bounded budget.
    pub fn conflicts(conflicts: u64) -> MiterBudget {
        MiterBudget {
            conflicts: Some(conflicts),
            ..MiterBudget::default()
        }
    }

    /// A deterministic propagation-bounded budget.
    pub fn propagations(propagations: u64) -> MiterBudget {
        MiterBudget {
            propagations: Some(propagations),
            ..MiterBudget::default()
        }
    }

    /// Adds a propagation bound to the budget.
    #[must_use]
    pub fn with_propagations(mut self, propagations: u64) -> MiterBudget {
        self.propagations = Some(propagations);
        self
    }

    /// Adds a wall-clock bound to the budget.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> MiterBudget {
        self.timeout = Some(timeout);
        self
    }
}

/// Verdict of an equivalence query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// `lhs == rhs` for every input at the query width (miter Unsat).
    Equivalent,
    /// The expressions differ on the contained witness.
    NotEquivalent(Counterexample),
    /// The budget (wall clock or conflicts) ran out.
    Timeout,
}

/// Result of [`SmtSolver::check_equivalence`].
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// The verdict.
    pub outcome: CheckOutcome,
    /// Wall-clock time spent on this query.
    pub elapsed: Duration,
    /// Whether word-level rewriting alone closed the query (no SAT
    /// search was needed).
    pub solved_by_rewriting: bool,
    /// SAT-core statistics for the query.
    pub sat_stats: SolverStats,
}

fn accumulate(into: &mut SolverStats, from: SolverStats) {
    into.conflicts += from.conflicts;
    into.decisions += from.decisions;
    into.propagations += from.propagations;
    into.restarts += from.restarts;
    into.learnts += from.learnts;
    into.deleted += from.deleted;
}

/// An SMT equivalence checker configured by a [`SolverProfile`].
///
/// ```
/// use mba_smt::{CheckOutcome, SmtSolver, SolverProfile};
/// let solver = SmtSolver::new(SolverProfile::z3_style());
/// let lhs = "x ^ y".parse().unwrap();
/// let rhs = "(x | y) - (x & y)".parse().unwrap();
/// assert_eq!(
///     solver.check_equivalence(&lhs, &rhs, 8, None).outcome,
///     CheckOutcome::Equivalent,
/// );
/// ```
#[derive(Debug, Clone)]
pub struct SmtSolver {
    profile: SolverProfile,
    conflict_budget: Option<u64>,
    propagation_budget: Option<u64>,
}

impl SmtSolver {
    /// Creates a solver with the given profile.
    pub fn new(profile: SolverProfile) -> SmtSolver {
        SmtSolver {
            profile,
            conflict_budget: None,
            propagation_budget: None,
        }
    }

    /// The active profile.
    pub fn profile(&self) -> &SolverProfile {
        &self.profile
    }

    /// Additionally bounds every query to `conflicts` SAT conflicts —
    /// a deterministic stand-in for wall-clock timeouts in tests.
    pub fn set_conflict_budget(&mut self, conflicts: Option<u64>) {
        self.conflict_budget = conflicts;
    }

    /// Additionally bounds every query to `propagations` SAT unit
    /// propagations — the deterministic cap that stops
    /// propagation-heavy miters a conflict budget never sees.
    pub fn set_propagation_budget(&mut self, propagations: Option<u64>) {
        self.propagation_budget = propagations;
    }

    /// [`SmtSolver::check_equivalence`] under an explicit per-query
    /// [`MiterBudget`], leaving the solver's own configuration
    /// untouched.
    ///
    /// This is the entry point oracle stacks use: a shared solver can
    /// issue many concurrent queries with different budgets without any
    /// mutable setter races. A budget given here overrides the
    /// solver-level conflict budget for this query only. The returned
    /// [`CheckResult`] carries per-solve SAT statistics
    /// ([`CheckResult::sat_stats`]) so callers can attribute cost to
    /// individual queries.
    ///
    /// ```
    /// use mba_smt::{CheckOutcome, MiterBudget, SmtSolver, SolverProfile};
    /// let solver = SmtSolver::new(SolverProfile::boolector_style());
    /// let lhs = "x*y".parse().unwrap();
    /// let rhs = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
    /// let r = solver.check_equivalence_budgeted(&lhs, &rhs, 8, &MiterBudget::conflicts(5));
    /// // The Figure 1 miter cannot finish in 5 conflicts — and a
    /// // budgeted query must answer Timeout, never a wrong verdict.
    /// assert_eq!(r.outcome, CheckOutcome::Timeout);
    /// ```
    pub fn check_equivalence_budgeted(
        &self,
        lhs: &Expr,
        rhs: &Expr,
        width: u32,
        budget: &MiterBudget,
    ) -> CheckResult {
        let mut bounded = self.clone();
        bounded.conflict_budget = budget.conflicts.or(self.conflict_budget);
        bounded.propagation_budget = budget.propagations.or(self.propagation_budget);
        bounded.check_equivalence(lhs, rhs, width, budget.timeout)
    }

    /// Decides whether `lhs == rhs` holds for **all** inputs at
    /// `width` bits, within the optional wall-clock `timeout`.
    ///
    /// The query runs the full solver pipeline: both sides are interned,
    /// rewritten at the profile's level (equal normal forms short-circuit
    /// to `Equivalent`), bit-blasted into a miter, and refuted or
    /// satisfied by the CDCL core.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ width ≤ 64`.
    pub fn check_equivalence(
        &self,
        lhs: &Expr,
        rhs: &Expr,
        width: u32,
        timeout: Option<Duration>,
    ) -> CheckResult {
        let start = Instant::now();
        let mut pool = TermPool::new(width);
        let l0 = pool.from_expr(lhs);
        let r0 = pool.from_expr(rhs);
        let l = rewrite(&mut pool, l0, self.profile.rewrite);
        let r = rewrite(&mut pool, r0, self.profile.rewrite);
        if l == r {
            return CheckResult {
                outcome: CheckOutcome::Equivalent,
                elapsed: start.elapsed(),
                solved_by_rewriting: true,
                sat_stats: SolverStats::default(),
            };
        }

        let mut vars = pool.vars_of(l);
        for v in pool.vars_of(r) {
            if !vars.contains(&v) {
                vars.push(v);
            }
        }
        vars.sort();

        if self.profile.split_outputs {
            return self.check_split(&pool, l, r, &vars, timeout, start);
        }

        let mut blaster = Blaster::new(&pool, self.profile.gate_sharing);
        blaster.sat.set_restart_base(self.profile.restart_base);
        blaster.sat.set_var_decay(self.profile.var_decay);
        blaster.sat.set_preprocessing(self.profile.preprocessing);
        blaster
            .sat
            .set_timeout(timeout.map(|t| t.saturating_sub(start.elapsed())));
        blaster.sat.set_conflict_budget(self.conflict_budget);
        blaster.sat.set_propagation_budget(self.propagation_budget);
        let lb = blaster.blast(l);
        let rb = blaster.blast(r);
        blaster.assert_not_equal(&lb, &rb);

        let outcome = match blaster.sat.solve() {
            SolveResult::Unsat => CheckOutcome::Equivalent,
            SolveResult::Unknown => CheckOutcome::Timeout,
            SolveResult::Sat => {
                let model: HashMap<Ident, u64> = blaster.model(&vars);
                let mut assignments: Vec<(Ident, u64)> = model.into_iter().collect();
                assignments.sort();
                CheckOutcome::NotEquivalent(Counterexample { assignments })
            }
        };
        CheckResult {
            outcome,
            elapsed: start.elapsed(),
            solved_by_rewriting: false,
            sat_stats: blaster.sat.stats(),
        }
    }

    /// Output-split decision: one SAT instance per output bit
    /// (LSB first, whose input cone is smallest). All bits refuted ⇒
    /// equivalent; any satisfiable bit yields a counterexample.
    fn check_split(
        &self,
        pool: &TermPool,
        l: crate::term::TermId,
        r: crate::term::TermId,
        vars: &[Ident],
        timeout: Option<Duration>,
        start: Instant,
    ) -> CheckResult {
        use crate::bitblast::MiterAssertion;
        let width = pool.width() as usize;
        let mut stats = SolverStats::default();
        for bit in 0..width {
            let mut blaster = Blaster::new(pool, self.profile.gate_sharing);
            blaster.sat.set_restart_base(self.profile.restart_base);
            blaster.sat.set_var_decay(self.profile.var_decay);
            blaster.sat.set_preprocessing(self.profile.preprocessing);
            blaster
                .sat
                .set_timeout(timeout.map(|t| t.saturating_sub(start.elapsed())));
            blaster.sat.set_conflict_budget(self.conflict_budget);
            blaster.sat.set_propagation_budget(self.propagation_budget);
            let lb = blaster.blast(l);
            let rb = blaster.blast(r);
            let result = match blaster.assert_bit_diff(&lb, &rb, bit) {
                MiterAssertion::TriviallyEqual => SolveResult::Unsat,
                MiterAssertion::TriviallyDifferent => SolveResult::Sat,
                MiterAssertion::Asserted => blaster.sat.solve(),
            };
            accumulate(&mut stats, blaster.sat.stats());
            match result {
                SolveResult::Unsat => continue,
                SolveResult::Unknown => {
                    return CheckResult {
                        outcome: CheckOutcome::Timeout,
                        elapsed: start.elapsed(),
                        solved_by_rewriting: false,
                        sat_stats: stats,
                    };
                }
                SolveResult::Sat => {
                    let model: HashMap<Ident, u64> = blaster.model(vars);
                    let mut assignments: Vec<(Ident, u64)> = model.into_iter().collect();
                    assignments.sort();
                    return CheckResult {
                        outcome: CheckOutcome::NotEquivalent(Counterexample { assignments }),
                        elapsed: start.elapsed(),
                        solved_by_rewriting: false,
                        sat_stats: stats,
                    };
                }
            }
        }
        CheckResult {
            outcome: CheckOutcome::Equivalent,
            elapsed: start.elapsed(),
            solved_by_rewriting: false,
            sat_stats: stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SolverProfile;

    fn solver() -> SmtSolver {
        SmtSolver::new(SolverProfile::boolector_style())
    }

    fn check(lhs: &str, rhs: &str, width: u32) -> CheckResult {
        solver().check_equivalence(
            &lhs.parse().unwrap(),
            &rhs.parse().unwrap(),
            width,
            None,
        )
    }

    #[test]
    fn equivalent_identities() {
        for (l, r) in [
            ("x + y", "(x | y) + (x & y)"),
            ("x - y", "(x ^ y) - 2*(~x & y)"),
            ("x ^ y", "x + y - 2*(x & y)"),
            ("2*(x|y) - (~x&y) - (x&~y)", "x + y"),
        ] {
            let result = check(l, r, 8);
            assert_eq!(result.outcome, CheckOutcome::Equivalent, "{l} == {r}");
        }
    }

    #[test]
    fn inequivalent_pairs_give_valid_witnesses() {
        for (l, r) in [("x + y", "x + y + 1"), ("x & y", "x | y"), ("x*y", "x+y")] {
            let result = check(l, r, 8);
            let CheckOutcome::NotEquivalent(cex) = &result.outcome else {
                panic!("{l} vs {r}: expected a counterexample");
            };
            let v = cex.to_valuation();
            let le: Expr = l.parse().unwrap();
            let re: Expr = r.parse().unwrap();
            assert_ne!(le.eval(&v, 8), re.eval(&v, 8), "bogus witness {cex}");
        }
    }

    #[test]
    fn syntactic_equality_is_solved_by_rewriting() {
        let r = check("x + y", "x + y", 64);
        assert!(r.solved_by_rewriting);
        assert_eq!(r.outcome, CheckOutcome::Equivalent);
        // Commutative normalization also closes y + x at Standard+.
        let r = check("x + y", "y + x", 64);
        assert!(r.solved_by_rewriting);
    }

    #[test]
    fn aggressive_rewriting_closes_linear_cancellations_without_sat() {
        let r = check("x + (x&y) - (x&y)", "x", 64);
        assert!(r.solved_by_rewriting, "should not need bit-blasting");
        assert_eq!(r.outcome, CheckOutcome::Equivalent);
    }

    #[test]
    fn weaker_profiles_need_the_sat_core_more_often() {
        let lhs: Expr = "x + (x&y) - (x&y)".parse().unwrap();
        let rhs: Expr = "x".parse().unwrap();
        let weak = SmtSolver::new(SolverProfile::stp_style());
        let r = weak.check_equivalence(&lhs, &rhs, 8, None);
        assert_eq!(r.outcome, CheckOutcome::Equivalent);
        assert!(!r.solved_by_rewriting, "Basic rewriting cannot cancel");
    }

    #[test]
    fn conflict_budget_produces_timeout_on_hard_miters() {
        // Figure 1 at 8 bits with a 5-conflict budget cannot finish.
        let mut s = solver();
        s.set_conflict_budget(Some(5));
        let lhs: Expr = "x*y".parse().unwrap();
        let rhs: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
        let r = s.check_equivalence(&lhs, &rhs, 8, None);
        assert_eq!(r.outcome, CheckOutcome::Timeout);
    }

    #[test]
    fn propagation_budget_of_one_times_out_deterministically() {
        // The Figure 1 miter cannot reach a verdict within a single
        // unit propagation, so a `propagations(1)` budget must stop the
        // search — deterministically, on every run — exactly like the
        // conflict budget does. This is the cap that bounds
        // propagation-heavy miters a conflict budget never observes.
        let lhs: Expr = "x*y".parse().unwrap();
        let rhs: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
        for _ in 0..3 {
            let r = solver().check_equivalence_budgeted(
                &lhs,
                &rhs,
                8,
                &MiterBudget::propagations(1),
            );
            assert_eq!(r.outcome, CheckOutcome::Timeout);
            assert!(r.sat_stats.propagations <= 2, "budget overrun");
        }
    }

    #[test]
    fn budgeted_query_with_propagation_headroom_still_finishes() {
        // A generous propagation budget must not change the verdict.
        let r = solver().check_equivalence_budgeted(
            &"x ^ y".parse().unwrap(),
            &"(x | y) - (x & y)".parse().unwrap(),
            8,
            &MiterBudget::propagations(1 << 20),
        );
        assert_eq!(r.outcome, CheckOutcome::Equivalent);
    }

    #[test]
    fn timeouts_respect_wall_clock() {
        let lhs: Expr = "x*y".parse().unwrap();
        let rhs: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
        let r = solver().check_equivalence(&lhs, &rhs, 16, Some(Duration::from_millis(30)));
        // Either it finished quickly or it timed out; it must not report
        // inequivalence.
        assert!(
            !matches!(r.outcome, CheckOutcome::NotEquivalent(_)),
            "identity misreported as inequivalent"
        );
    }

    #[test]
    fn one_bit_queries_work() {
        let r = check("x & y", "y & x", 1);
        assert_eq!(r.outcome, CheckOutcome::Equivalent);
        let r = check("x | y", "x & y", 1);
        assert!(matches!(r.outcome, CheckOutcome::NotEquivalent(_)));
    }

    #[test]
    fn all_profiles_agree_on_verdicts() {
        for profile in SolverProfile::all() {
            let s = SmtSolver::new(profile.clone());
            let good = s.check_equivalence(
                &"x + y".parse().unwrap(),
                &"(x ^ y) + 2*(x & y)".parse().unwrap(),
                8,
                None,
            );
            assert_eq!(
                good.outcome,
                CheckOutcome::Equivalent,
                "{} failed the identity",
                profile.name
            );
            let bad = s.check_equivalence(
                &"x".parse().unwrap(),
                &"x + 1".parse().unwrap(),
                8,
                None,
            );
            assert!(
                matches!(bad.outcome, CheckOutcome::NotEquivalent(_)),
                "{} failed the refutation",
                profile.name
            );
        }
    }
}
