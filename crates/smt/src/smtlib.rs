//! SMT-LIB 2 emission.
//!
//! MBA-Solver is a *preprocessing pass*: its output should be consumable
//! by any production solver (paper Figure 5). This module serializes
//! expressions and equivalence queries into standard `QF_BV` SMT-LIB 2
//! scripts that Z3, STP, Boolector, Bitwuzla, cvc5, … accept verbatim.

use std::fmt::Write as _;

use mba_expr::{BinOp, Expr, UnOp};

/// Renders an expression as an SMT-LIB 2 bit-vector term of `width`
/// bits.
///
/// ```
/// use mba_smt::smtlib::to_term;
/// let e = "x + 2*(x & y)".parse().unwrap();
/// assert_eq!(
///     to_term(&e, 8),
///     "(bvadd x (bvmul #x02 (bvand x y)))"
/// );
/// ```
///
/// # Panics
///
/// Panics unless `1 ≤ width ≤ 64`.
pub fn to_term(e: &Expr, width: u32) -> String {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    let mut out = String::new();
    write_term(e, width, &mut out);
    out
}

fn write_term(e: &Expr, width: u32, out: &mut String) {
    match e {
        Expr::Const(c) => write_const(*c, width, out),
        Expr::Var(v) => out.push_str(v.as_str()),
        Expr::Unary(op, a) => {
            let name = match op {
                UnOp::Neg => "bvneg",
                UnOp::Not => "bvnot",
            };
            out.push('(');
            out.push_str(name);
            out.push(' ');
            write_term(a, width, out);
            out.push(')');
        }
        Expr::Binary(op, a, b) => {
            let name = match op {
                BinOp::Add => "bvadd",
                BinOp::Sub => "bvsub",
                BinOp::Mul => "bvmul",
                BinOp::And => "bvand",
                BinOp::Or => "bvor",
                BinOp::Xor => "bvxor",
            };
            out.push('(');
            out.push_str(name);
            out.push(' ');
            write_term(a, width, out);
            out.push(' ');
            write_term(b, width, out);
            out.push(')');
        }
    }
}

fn write_const(c: i128, width: u32, out: &mut String) {
    let masked = mba_expr::mask(c as u64, width);
    if width.is_multiple_of(4) {
        let digits = (width / 4) as usize;
        let _ = write!(out, "#x{masked:0digits$x}");
    } else {
        let digits = width as usize;
        let _ = write!(out, "#b{masked:0digits$b}");
    }
}

/// Builds a complete SMT-LIB 2 script asking whether `lhs == rhs` for
/// all `width`-bit inputs: `sat` means *not* equivalent (the model is a
/// counterexample), `unsat` means equivalent — the same miter convention
/// the paper's experiments use.
///
/// ```
/// use mba_smt::smtlib::equivalence_query;
/// let script = equivalence_query(
///     &"x + y".parse().unwrap(),
///     &"(x | y) + (x & y)".parse().unwrap(),
///     64,
/// );
/// assert!(script.contains("(set-logic QF_BV)"));
/// assert!(script.contains("(check-sat)"));
/// ```
///
/// # Panics
///
/// Panics unless `1 ≤ width ≤ 64`.
pub fn equivalence_query(lhs: &Expr, rhs: &Expr, width: u32) -> String {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    let mut script = String::new();
    script.push_str("(set-logic QF_BV)\n");
    let mut vars: Vec<_> = lhs.vars().into_iter().collect();
    for v in rhs.vars() {
        if !vars.contains(&v) {
            vars.push(v);
        }
    }
    vars.sort();
    for v in &vars {
        let _ = writeln!(script, "(declare-const {v} (_ BitVec {width}))");
    }
    let _ = writeln!(
        script,
        "(assert (distinct {} {}))",
        to_term(lhs, width),
        to_term(rhs, width)
    );
    script.push_str("(check-sat)\n");
    script
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terms_use_bv_operators() {
        let e: Expr = "~(x ^ y) - -z".parse().unwrap();
        assert_eq!(
            to_term(&e, 32),
            "(bvsub (bvnot (bvxor x y)) (bvneg z))"
        );
    }

    #[test]
    fn constants_render_in_hex_when_width_is_nibble_aligned() {
        assert_eq!(to_term(&Expr::Const(255), 8), "#xff");
        assert_eq!(to_term(&Expr::Const(-1), 16), "#xffff");
        assert_eq!(to_term(&Expr::Const(10), 64), "#x000000000000000a");
    }

    #[test]
    fn constants_render_in_binary_otherwise() {
        assert_eq!(to_term(&Expr::Const(5), 3), "#b101");
        assert_eq!(to_term(&Expr::Const(-1), 5), "#b11111");
    }

    #[test]
    fn figure_1_script_shape() {
        let script = equivalence_query(
            &"x*y".parse().unwrap(),
            &"(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap(),
            64,
        );
        assert!(script.starts_with("(set-logic QF_BV)"));
        assert!(script.contains("(declare-const x (_ BitVec 64))"));
        assert!(script.contains("(declare-const y (_ BitVec 64))"));
        assert!(script.contains("(assert (distinct (bvmul x y)"));
        assert!(script.trim_end().ends_with("(check-sat)"));
        // Exactly two declarations: no duplicates.
        assert_eq!(script.matches("declare-const").count(), 2);
    }

    #[test]
    fn variables_from_both_sides_are_declared_once() {
        let script = equivalence_query(
            &"a + b".parse().unwrap(),
            &"b + c".parse().unwrap(),
            8,
        );
        for v in ["a", "b", "c"] {
            assert_eq!(
                script.matches(&format!("(declare-const {v} ")).count(),
                1
            );
        }
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        to_term(&Expr::var("x"), 0);
    }
}
