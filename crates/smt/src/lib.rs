//! A bit-vector (QF_BV) SMT layer over the `mba-sat` CDCL core.
//!
//! This crate plays the role the paper assigns to Z3, STP and Boolector:
//! deciding MBA *equivalence queries* (`lhs == rhs` for all inputs, i.e.
//! the negation's unsatisfiability). The pipeline is the standard one in
//! bit-vector solvers:
//!
//! 1. hash-consed term graph ([`TermPool`]),
//! 2. word-level rewriting ([`RewriteLevel`]) — constant folding,
//!    algebraic/bitwise unit laws, commutative normalization, and (at
//!    the aggressive level) linear-term collection,
//! 3. Tseitin bit-blasting ([`bitblast`]) with ripple-carry adders and a
//!    shift-add multiplier, optional structural gate sharing,
//! 4. CDCL SAT solving with per-query wall-clock/conflict budgets.
//!
//! The three [`SolverProfile`]s emulate the paper's solvers: they share
//! the architecture but differ in rewrite aggressiveness, gate sharing,
//! and restart/decay tuning — enough to reproduce the *relative*
//! behaviour the paper reports (word-level rewriting cannot cross the
//! bitwise/arithmetic boundary, so complex MBA forces an expensive
//! bit-level unsatisfiability proof; simplified MBA is discharged in
//! microseconds).
//!
//! # Example
//!
//! ```
//! use mba_smt::{CheckOutcome, SmtSolver, SolverProfile};
//!
//! let solver = SmtSolver::new(SolverProfile::boolector_style());
//! let lhs = "x + y".parse().unwrap();
//! let rhs = "(x | y) + (x & y)".parse().unwrap();
//! let result = solver.check_equivalence(&lhs, &rhs, 8, None);
//! assert_eq!(result.outcome, CheckOutcome::Equivalent);
//!
//! let wrong = "x - y".parse().unwrap();
//! let result = solver.check_equivalence(&lhs, &wrong, 8, None);
//! assert!(matches!(result.outcome, CheckOutcome::NotEquivalent(_)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitblast;
mod profile;
mod rewrite;
pub mod smtlib;
mod solver;
mod term;

pub use profile::{RewriteLevel, SolverProfile};
pub use solver::{CheckOutcome, CheckResult, Counterexample, MiterBudget, SmtSolver};
pub use term::{TermId, TermKind, TermPool};
