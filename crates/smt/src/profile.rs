//! Solver profiles emulating the paper's three SMT solvers.

/// Aggressiveness of the word-level rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RewriteLevel {
    /// Constant folding and unit/annihilator laws only.
    Basic,
    /// `Basic` plus idempotence, complement laws, self-cancellation and
    /// commutative operand normalization.
    Standard,
    /// `Standard` plus linear-term collection over syntactic atoms
    /// (flattening `+`/`-`/`·const` chains and cancelling like terms).
    /// Word-level rewriting still cannot cross the bitwise/arithmetic
    /// boundary — that is precisely the paper's point.
    Aggressive,
}

/// Configuration bundle standing in for one of the paper's solvers.
///
/// All profiles share the same decision procedure (rewrite → bit-blast →
/// CDCL); they differ in preprocessing strength and search tuning, which
/// is also how the real Z3/STP/Boolector differ on QF_BV.
#[derive(Debug, Clone, PartialEq)]
pub struct SolverProfile {
    /// Display name, e.g. `"z3-style"`.
    pub name: &'static str,
    /// Word-level rewrite aggressiveness.
    pub rewrite: RewriteLevel,
    /// Structural hashing of Tseitin gates (AIG-style sharing).
    pub gate_sharing: bool,
    /// Output splitting: prove each miter bit unsatisfiable separately
    /// (LSB-first), exploiting the small input cones of low bits —
    /// usually far cheaper than refuting the whole disjunction at once.
    pub split_outputs: bool,
    /// SatELite-style bounded variable elimination before search.
    pub preprocessing: bool,
    /// Luby restart base, in conflicts.
    pub restart_base: u64,
    /// VSIDS decay (smaller = more aggressive focus).
    pub var_decay: f64,
}

impl SolverProfile {
    /// A Z3-like profile: solid rewriting, conservative search.
    pub fn z3_style() -> SolverProfile {
        SolverProfile {
            name: "z3-style",
            rewrite: RewriteLevel::Standard,
            gate_sharing: false,
            split_outputs: false,
            preprocessing: false,
            restart_base: 150,
            var_decay: 0.95,
        }
    }

    /// An STP-like profile: lighter rewriting, shared gates.
    pub fn stp_style() -> SolverProfile {
        SolverProfile {
            name: "stp-style",
            rewrite: RewriteLevel::Basic,
            gate_sharing: true,
            split_outputs: false,
            preprocessing: true,
            restart_base: 100,
            var_decay: 0.95,
        }
    }

    /// A Boolector-like profile: aggressive rewriting, shared gates,
    /// and CNF preprocessing — the SMT-COMP winner the paper found
    /// strongest on raw MBA (Table 2). Output splitting is off by
    /// default but available as a capability.
    pub fn boolector_style() -> SolverProfile {
        SolverProfile {
            name: "boolector-style",
            rewrite: RewriteLevel::Aggressive,
            gate_sharing: true,
            split_outputs: false,
            preprocessing: true,
            restart_base: 100,
            var_decay: 0.95,
        }
    }

    /// The three profiles in the order the paper's tables list them.
    pub fn all() -> [SolverProfile; 3] {
        [
            SolverProfile::z3_style(),
            SolverProfile::stp_style(),
            SolverProfile::boolector_style(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_distinct_and_ordered() {
        let [z3, stp, boolector] = SolverProfile::all();
        assert_eq!(z3.name, "z3-style");
        assert_eq!(stp.name, "stp-style");
        assert_eq!(boolector.name, "boolector-style");
        assert!(boolector.rewrite > z3.rewrite);
        assert!(z3.rewrite > stp.rewrite);
    }
}
