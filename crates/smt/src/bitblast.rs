//! Tseitin bit-blasting of bit-vector terms into CNF.
//!
//! Words are vectors of SAT literals, LSB first. Addition is a
//! ripple-carry adder, subtraction is `a + ¬b + 1`, negation is
//! `¬a + 1`, and multiplication is the shift-add array — the same
//! circuits real QF_BV solvers emit, and the reason MBA miters produce
//! such hostile CNF.

use std::collections::HashMap;

use mba_expr::{BinOp, Ident, UnOp};
use mba_sat::{Lit, Solver};

use crate::term::{TermId, TermKind, TermPool};

/// Outcome of asserting a single-bit miter; see
/// [`Blaster::assert_bit_diff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MiterAssertion {
    /// The two bits are structurally identical: no search needed, the
    /// bit is proven equal.
    TriviallyEqual,
    /// The two bits are constant complements: any assignment witnesses
    /// the difference.
    TriviallyDifferent,
    /// A unit clause was added; solve to decide.
    Asserted,
}

/// Gate kinds for the structural-sharing cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Gate {
    And(Lit, Lit),
    Xor(Lit, Lit),
}

/// Bit-blasts terms from one [`TermPool`] into an owned SAT solver.
#[derive(Debug)]
pub struct Blaster<'p> {
    pool: &'p TermPool,
    /// The CNF under construction. Public so the driver can set budgets
    /// and call `solve`.
    pub sat: Solver,
    bits: HashMap<TermId, Vec<Lit>>,
    var_bits: HashMap<Ident, Vec<Lit>>,
    true_lit: Lit,
    gate_cache: Option<HashMap<Gate, Lit>>,
}

impl<'p> Blaster<'p> {
    /// Creates a blaster. `gate_sharing` enables structural hashing of
    /// AND/XOR gates (AIG-style CNF compression).
    pub fn new(pool: &'p TermPool, gate_sharing: bool) -> Blaster<'p> {
        let mut sat = Solver::new();
        let t = sat.new_var();
        let true_lit = Lit::positive(t);
        sat.add_clause(&[true_lit]);
        Blaster {
            pool,
            sat,
            bits: HashMap::new(),
            var_bits: HashMap::new(),
            true_lit,
            gate_cache: gate_sharing.then(HashMap::new),
        }
    }

    fn width(&self) -> usize {
        self.pool.width() as usize
    }

    fn false_lit(&self) -> Lit {
        !self.true_lit
    }

    /// The literals backing a bit-vector variable (fresh on first use).
    pub fn var_bits(&mut self, name: &Ident) -> Vec<Lit> {
        if let Some(bits) = self.var_bits.get(name) {
            return bits.clone();
        }
        let bits: Vec<Lit> = (0..self.width())
            .map(|_| Lit::positive(self.sat.new_var()))
            .collect();
        self.var_bits.insert(name.clone(), bits.clone());
        bits
    }

    /// Bit-blasts `id` (memoized across shared subterms).
    pub fn blast(&mut self, id: TermId) -> Vec<Lit> {
        if let Some(bits) = self.bits.get(&id) {
            return bits.clone();
        }
        let bits = match self.pool.kind(id).clone() {
            TermKind::Const(c) => self.const_bits(c),
            TermKind::Var(v) => self.var_bits(&v),
            TermKind::Unary(UnOp::Not, a) => {
                let a = self.blast(a);
                a.into_iter().map(|l| !l).collect()
            }
            TermKind::Unary(UnOp::Neg, a) => {
                // −a = ¬a + 1.
                let a = self.blast(a);
                let inverted: Vec<Lit> = a.into_iter().map(|l| !l).collect();
                let zero = self.const_bits(0);
                self.adder(&inverted, &zero, self.true_lit)
            }
            TermKind::Binary(op, a, b) => {
                let av = self.blast(a);
                let bv = self.blast(b);
                match op {
                    BinOp::And => self.zip_gate(&av, &bv, Self::lit_and),
                    BinOp::Or => self.zip_gate(&av, &bv, Self::lit_or),
                    BinOp::Xor => self.zip_gate(&av, &bv, Self::lit_xor),
                    BinOp::Add => self.adder(&av, &bv, self.false_lit()),
                    BinOp::Sub => {
                        let inverted: Vec<Lit> = bv.into_iter().map(|l| !l).collect();
                        self.adder(&av, &inverted, self.true_lit)
                    }
                    BinOp::Mul => self.multiplier(&av, &bv),
                }
            }
        };
        self.bits.insert(id, bits.clone());
        bits
    }

    /// Asserts that bit `i` of `x` and `y` differ — the per-output-bit
    /// miter used by output splitting. The return value distinguishes
    /// the degenerate cases that need no search.
    ///
    /// # Panics
    ///
    /// Panics when the widths differ or `i` is out of range.
    pub fn assert_bit_diff(&mut self, x: &[Lit], y: &[Lit], i: usize) -> MiterAssertion {
        assert_eq!(x.len(), y.len(), "width mismatch");
        let d = self.lit_xor(x[i], y[i]);
        if d == self.false_lit() {
            MiterAssertion::TriviallyEqual
        } else if d == self.true_lit {
            MiterAssertion::TriviallyDifferent
        } else {
            self.sat.add_clause(&[d]);
            MiterAssertion::Asserted
        }
    }

    /// Asserts `x ≠ y` (the miter): at least one pair of bits differs.
    /// After this, `Unsat` means the original terms are equivalent.
    pub fn assert_not_equal(&mut self, x: &[Lit], y: &[Lit]) {
        assert_eq!(x.len(), y.len(), "width mismatch");
        let f = self.false_lit();
        let diff: Vec<Lit> = x
            .iter()
            .zip(y)
            .map(|(&a, &b)| self.lit_xor(a, b))
            .filter(|&d| d != f)
            .collect();
        if diff.is_empty() {
            // All bits provably equal: make the formula unsatisfiable.
            let f = self.false_lit();
            self.sat.add_clause(&[f]);
        } else {
            self.sat.add_clause(&diff);
        }
    }

    /// Reads back a model for the given variables (after `Sat`).
    pub fn model(&self, vars: &[Ident]) -> HashMap<Ident, u64> {
        let mut out = HashMap::new();
        for v in vars {
            let Some(bits) = self.var_bits.get(v) else {
                out.insert(v.clone(), 0);
                continue;
            };
            let mut value = 0u64;
            for (i, l) in bits.iter().enumerate() {
                let assigned = self.sat.value(l.var()).unwrap_or(false);
                if assigned == l.is_positive() {
                    value |= 1 << i;
                }
            }
            out.insert(v.clone(), value);
        }
        out
    }

    fn const_bits(&self, c: u64) -> Vec<Lit> {
        (0..self.width())
            .map(|i| {
                if (c >> i) & 1 == 1 {
                    self.true_lit
                } else {
                    self.false_lit()
                }
            })
            .collect()
    }

    fn zip_gate(&mut self, a: &[Lit], b: &[Lit], gate: fn(&mut Self, Lit, Lit) -> Lit) -> Vec<Lit> {
        a.iter().zip(b).map(|(&x, &y)| gate(self, x, y)).collect()
    }

    fn fresh(&mut self) -> Lit {
        Lit::positive(self.sat.new_var())
    }

    /// `z = a ∧ b` with constant/structural peepholes.
    fn lit_and(&mut self, a: Lit, b: Lit) -> Lit {
        let (t, f) = (self.true_lit, self.false_lit());
        if a == f || b == f {
            return f;
        }
        if a == t {
            return b;
        }
        if b == t {
            return a;
        }
        if a == b {
            return a;
        }
        if a == !b {
            return f;
        }
        let key = Gate::And(a.min(b), a.max(b));
        if let Some(cache) = &self.gate_cache {
            if let Some(&z) = cache.get(&key) {
                return z;
            }
        }
        let z = self.fresh();
        self.sat.add_clause(&[!a, !b, z]);
        self.sat.add_clause(&[a, !z]);
        self.sat.add_clause(&[b, !z]);
        if let Some(cache) = &mut self.gate_cache {
            cache.insert(key, z);
        }
        z
    }

    /// `z = a ∨ b`, via De Morgan on the AND gate cache.
    fn lit_or(&mut self, a: Lit, b: Lit) -> Lit {
        !self.lit_and(!a, !b)
    }

    /// `z = a ⊕ b` with peepholes.
    fn lit_xor(&mut self, a: Lit, b: Lit) -> Lit {
        let (t, f) = (self.true_lit, self.false_lit());
        if a == f {
            return b;
        }
        if b == f {
            return a;
        }
        if a == t {
            return !b;
        }
        if b == t {
            return !a;
        }
        if a == b {
            return f;
        }
        if a == !b {
            return t;
        }
        // Canonical polarity: positive first literal, so x⊕y and ¬x⊕¬y
        // share a gate.
        let (mut x, mut y) = (a.min(b), a.max(b));
        let mut flip = false;
        if !x.is_positive() {
            x = !x;
            flip = !flip;
        }
        if !y.is_positive() {
            y = !y;
            flip = !flip;
        }
        let key = Gate::Xor(x, y);
        if let Some(cache) = &self.gate_cache {
            if let Some(&z) = cache.get(&key) {
                return if flip { !z } else { z };
            }
        }
        let z = self.fresh();
        self.sat.add_clause(&[!x, !y, !z]);
        self.sat.add_clause(&[x, y, !z]);
        self.sat.add_clause(&[x, !y, z]);
        self.sat.add_clause(&[!x, y, z]);
        if let Some(cache) = &mut self.gate_cache {
            cache.insert(key, z);
        }
        if flip {
            !z
        } else {
            z
        }
    }

    /// Ripple-carry addition with initial carry `carry`.
    fn adder(&mut self, a: &[Lit], b: &[Lit], mut carry: Lit) -> Vec<Lit> {
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.lit_xor(x, y);
            out.push(self.lit_xor(xy, carry));
            // cout = (x ∧ y) ∨ (carry ∧ (x ⊕ y))
            let g = self.lit_and(x, y);
            let p = self.lit_and(xy, carry);
            carry = self.lit_or(g, p);
        }
        out
    }

    /// Shift-add multiplication.
    fn multiplier(&mut self, a: &[Lit], b: &[Lit]) -> Vec<Lit> {
        let w = a.len();
        let mut acc = self.const_bits(0);
        for i in 0..w {
            // row = (b << i) ∧ a_i (only bits i..w matter).
            let mut row = Vec::with_capacity(w);
            for j in 0..w {
                if j < i {
                    row.push(self.false_lit());
                } else {
                    row.push(self.lit_and(a[i], b[j - i]));
                }
            }
            acc = self.adder(&acc, &row, self.false_lit());
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Expr;
    use mba_sat::SolveResult;

    /// Blasts `expr == expected(x, y)` as a miter and checks Unsat.
    fn prove_identity(width: u32, lhs: &str, rhs: &str, gate_sharing: bool) {
        let mut pool = TermPool::new(width);
        let l = pool.from_expr(&lhs.parse::<Expr>().unwrap());
        let r = pool.from_expr(&rhs.parse::<Expr>().unwrap());
        let mut blaster = Blaster::new(&pool, gate_sharing);
        let lb = blaster.blast(l);
        let rb = blaster.blast(r);
        blaster.assert_not_equal(&lb, &rb);
        assert_eq!(
            blaster.sat.solve(),
            SolveResult::Unsat,
            "{lhs} == {rhs} not proven at width {width}"
        );
    }

    fn find_difference(width: u32, lhs: &str, rhs: &str) -> HashMap<Ident, u64> {
        let mut pool = TermPool::new(width);
        let l = pool.from_expr(&lhs.parse::<Expr>().unwrap());
        let r = pool.from_expr(&rhs.parse::<Expr>().unwrap());
        let vars = pool.vars_of(l);
        let mut blaster = Blaster::new(&pool, true);
        let lb = blaster.blast(l);
        let rb = blaster.blast(r);
        blaster.assert_not_equal(&lb, &rb);
        assert_eq!(blaster.sat.solve(), SolveResult::Sat);
        blaster.model(&vars)
    }

    #[test]
    fn proves_classic_mba_identities() {
        for sharing in [false, true] {
            prove_identity(8, "x | y", "(x & ~y) + y", sharing);
            prove_identity(8, "x ^ y", "(x | y) - (x & y)", sharing);
            prove_identity(8, "x + y", "(x ^ y) + 2*(x & y)", sharing);
        }
    }

    #[test]
    fn proves_identities_at_various_widths() {
        for w in [1, 3, 8, 16] {
            prove_identity(w, "x + y", "(x | y) + (x & y)", true);
        }
    }

    #[test]
    fn proves_figure_1_at_small_width() {
        // The 4-bit version of the paper's Z3-killer is within reach of
        // a fresh CDCL solver.
        prove_identity(4, "x*y", "(x&~y)*(~x&y) + (x&y)*(x|y)", true);
    }

    #[test]
    fn refutes_non_identities_with_a_real_model() {
        let model = find_difference(8, "x + y", "x - y");
        let x = model[&Ident::new("x")];
        let y = model[&Ident::new("y")];
        assert_ne!(
            x.wrapping_add(y) & 0xff,
            x.wrapping_sub(y) & 0xff,
            "model ({x},{y}) does not witness the difference"
        );
    }

    #[test]
    fn multiplication_circuit_is_correct_exhaustively() {
        // 4-bit x*y against all 256 input pairs via single miter per
        // constant pair would be slow; instead prove x*y == y*x and
        // x*(y+1) == x*y + x, which exercise the array multiplier.
        prove_identity(4, "x*y", "y*x", true);
        prove_identity(4, "x*(y+1)", "x*y + x", true);
        prove_identity(4, "x*2", "x + x", true);
    }

    #[test]
    fn subtraction_and_negation_circuits() {
        prove_identity(8, "x - y", "x + (~y + 1)", true);
        prove_identity(8, "-x", "~x + 1", true);
        prove_identity(8, "-(x - y)", "y - x", true);
    }

    #[test]
    fn constant_equal_terms_give_empty_miter() {
        // x & 0 == 0: every diff bit is constant false, so the miter is
        // the empty clause — Unsat without search.
        let mut pool = TermPool::new(8);
        let l = pool.from_expr(&"x & 0".parse::<Expr>().unwrap());
        let r = pool.from_expr(&"0".parse::<Expr>().unwrap());
        let mut b = Blaster::new(&pool, true);
        let lb = b.blast(l);
        let rb = b.blast(r);
        b.assert_not_equal(&lb, &rb);
        assert_eq!(b.sat.solve(), SolveResult::Unsat);
        assert_eq!(b.sat.stats().conflicts, 0, "should not search at all");
    }

    #[test]
    fn gate_sharing_reduces_variable_count() {
        let build = |sharing: bool| {
            let mut pool = TermPool::new(8);
            // (x&y) appears multiple times structurally.
            let e: Expr = "(x & y) + (x & y) + (x & y)".parse().unwrap();
            let id = pool.from_expr(&e);
            let mut b = Blaster::new(&pool, sharing);
            b.blast(id);
            b.sat.num_vars()
        };
        // Hash-consing already shares the (x&y) term, so measure gate
        // sharing on a shape the pool cannot share:
        let build2 = |sharing: bool| {
            let mut pool = TermPool::new(8);
            let e: Expr = "(x & y) | (y & x)".parse().unwrap();
            let id = pool.from_expr(&e);
            let mut b = Blaster::new(&pool, sharing);
            b.blast(id);
            b.sat.num_vars()
        };
        assert!(build(true) <= build(false));
        assert!(build2(true) <= build2(false));
    }
}
