//! Hash-consed bit-vector terms.

use std::collections::HashMap;

use mba_expr::{BinOp, Expr, Ident, UnOp};

/// A handle into a [`TermPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(u32);

impl TermId {
    /// The dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The node kinds of the QF_BV fragment the paper uses:
/// `∧ ∨ ⊕ ¬ + − ×` plus constants and variables, all of one width.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    /// A constant, already masked to the pool width.
    Const(u64),
    /// A free bit-vector variable.
    Var(Ident),
    /// A unary operation.
    Unary(UnOp, TermId),
    /// A binary operation.
    Binary(BinOp, TermId, TermId),
}

/// An arena of hash-consed terms at a fixed bit width. Structurally
/// identical terms share one [`TermId`], which both deduplicates
/// bit-blasting work and makes syntactic-equality checks O(1).
#[derive(Debug)]
pub struct TermPool {
    width: u32,
    terms: Vec<TermKind>,
    dedup: HashMap<TermKind, TermId>,
}

impl TermPool {
    /// Creates a pool for `width`-bit terms.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ width ≤ 64`.
    pub fn new(width: u32) -> TermPool {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        TermPool {
            width,
            terms: Vec::new(),
            dedup: HashMap::new(),
        }
    }

    /// The pool's bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of distinct terms interned.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Interns a node, returning its id (an existing id if the node is
    /// already present).
    pub fn intern(&mut self, kind: TermKind) -> TermId {
        let kind = match kind {
            TermKind::Const(c) => TermKind::Const(mba_expr::mask(c, self.width)),
            other => other,
        };
        if let Some(&id) = self.dedup.get(&kind) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(kind.clone());
        self.dedup.insert(kind, id);
        id
    }

    /// The node behind `id`.
    ///
    /// # Panics
    ///
    /// Panics on a foreign/dangling id.
    pub fn kind(&self, id: TermId) -> &TermKind {
        &self.terms[id.index()]
    }

    /// Interns a constant.
    pub fn constant(&mut self, value: u64) -> TermId {
        self.intern(TermKind::Const(value))
    }

    /// Interns a variable.
    pub fn var(&mut self, name: impl Into<Ident>) -> TermId {
        self.intern(TermKind::Var(name.into()))
    }

    /// Lowers an [`Expr`] into the pool.
    pub fn from_expr(&mut self, e: &Expr) -> TermId {
        match e {
            Expr::Const(c) => self.constant(*c as u64),
            Expr::Var(v) => self.intern(TermKind::Var(v.clone())),
            Expr::Unary(op, inner) => {
                let i = self.from_expr(inner);
                self.intern(TermKind::Unary(*op, i))
            }
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.from_expr(a), self.from_expr(b));
                self.intern(TermKind::Binary(*op, a, b))
            }
        }
    }

    /// The variables below `id`, sorted by name.
    pub fn vars_of(&self, id: TermId) -> Vec<Ident> {
        let mut out = std::collections::BTreeSet::new();
        let mut stack = vec![id];
        let mut seen = vec![false; self.terms.len()];
        while let Some(t) = stack.pop() {
            if std::mem::replace(&mut seen[t.index()], true) {
                continue;
            }
            match self.kind(t) {
                TermKind::Const(_) => {}
                TermKind::Var(v) => {
                    out.insert(v.clone());
                }
                TermKind::Unary(_, a) => stack.push(*a),
                TermKind::Binary(_, a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
            }
        }
        out.into_iter().collect()
    }

    /// Evaluates `id` under a full assignment (for counterexample
    /// validation). Unbound variables read 0.
    pub fn eval(&self, id: TermId, env: &HashMap<Ident, u64>) -> u64 {
        let kind = self.kind(id);
        let value = match kind {
            TermKind::Const(c) => *c,
            TermKind::Var(v) => env.get(v).copied().unwrap_or(0),
            TermKind::Unary(op, a) => {
                let x = self.eval(*a, env);
                match op {
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::Not => !x,
                }
            }
            TermKind::Binary(op, a, b) => {
                let (x, y) = (self.eval(*a, env), self.eval(*b, env));
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                }
            }
        };
        mba_expr::mask(value, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedupes() {
        let mut pool = TermPool::new(8);
        let a: Expr = "x + y".parse().unwrap();
        let b: Expr = "x + y".parse().unwrap();
        assert_eq!(pool.from_expr(&a), pool.from_expr(&b));
        // (x+y) and (y+x) are structurally different.
        let c: Expr = "y + x".parse().unwrap();
        assert_ne!(pool.from_expr(&a), pool.from_expr(&c));
    }

    #[test]
    fn shared_subterms_are_interned_once() {
        let mut pool = TermPool::new(8);
        let e: Expr = "(x & y) + (x & y)".parse().unwrap();
        pool.from_expr(&e);
        // x, y, x&y, + : four nodes, not six.
        assert_eq!(pool.len(), 4);
    }

    #[test]
    fn constants_are_masked() {
        let mut pool = TermPool::new(8);
        let a = pool.constant(0x1ff);
        let b = pool.constant(0xff);
        assert_eq!(a, b);
        assert_eq!(pool.kind(a), &TermKind::Const(0xff));
        // -1 folds to the all-ones pattern.
        let m: Expr = "-1".parse().unwrap();
        let id = pool.from_expr(&m);
        assert_eq!(pool.kind(id), &TermKind::Const(0xff));
    }

    #[test]
    fn vars_of_collects_sorted() {
        let mut pool = TermPool::new(8);
        let e: Expr = "z*(x&z) + y".parse().unwrap();
        let id = pool.from_expr(&e);
        let names: Vec<String> = pool.vars_of(id).iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["x", "y", "z"]);
    }

    #[test]
    fn eval_matches_expr_eval() {
        let mut pool = TermPool::new(16);
        let e: Expr = "(x ^ y) + 2*(x & y) - ~x".parse().unwrap();
        let id = pool.from_expr(&e);
        let env: HashMap<Ident, u64> =
            [(Ident::new("x"), 0xabcd), (Ident::new("y"), 0x1234)].into();
        let v = mba_expr::Valuation::new().with("x", 0xabcd).with("y", 0x1234);
        assert_eq!(pool.eval(id, &env), e.eval(&v, 16));
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_pool_panics() {
        TermPool::new(0);
    }
}
