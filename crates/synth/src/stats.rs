//! Process-global counters for the synthesis tier, mirroring the
//! `simba.*` counter idiom: relaxed atomics bumped from the hot path,
//! snapshot + delta helpers for benches and tests, and an obs bridge
//! publishing `synth.*` gauges next to the `eval.*` engine gauges.

use std::sync::atomic::{AtomicU64, Ordering};

static ATTEMPTS: AtomicU64 = AtomicU64::new(0);
static HITS: AtomicU64 = AtomicU64::new(0);
static CANDIDATES: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);
static BUDGET_EXHAUSTED: AtomicU64 = AtomicU64::new(0);

/// Counts one synthesis query that passed the eligibility gates.
pub(crate) fn record_attempt() {
    ATTEMPTS.fetch_add(1, Ordering::Relaxed);
}

/// Counts one accepted (verified, strictly better) substitution.
pub(crate) fn record_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}

/// Counts enumerated candidates (pool growth, pre-dedup).
pub(crate) fn record_candidates(n: u64) {
    CANDIDATES.fetch_add(n, Ordering::Relaxed);
}

/// Counts a candidate that matched the signature but failed the probe
/// re-verify — the original expression was kept.
pub(crate) fn record_fallback() {
    FALLBACKS.fetch_add(1, Ordering::Relaxed);
}

/// Counts a pool build truncated by the candidate or wall-clock budget.
pub(crate) fn record_budget_exhausted() {
    BUDGET_EXHAUSTED.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the synthesis-tier counters since process start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SynthStats {
    /// Eligible synthesis queries.
    pub attempts: u64,
    /// Accepted substitutions (signature + probe verified, strictly
    /// better score).
    pub hits: u64,
    /// Candidates enumerated into the pools, before signature dedup.
    pub candidates: u64,
    /// Signature matches rejected by the probe re-verify.
    pub fallbacks: u64,
    /// Pool builds cut short by the candidate-count or wall-clock
    /// budget.
    pub budget_exhausted: u64,
}

impl SynthStats {
    /// Fraction of eligible queries that produced a substitution
    /// (`0.0` when nothing was attempted).
    pub fn hit_rate(&self) -> f64 {
        if self.attempts == 0 {
            0.0
        } else {
            self.hits as f64 / self.attempts as f64
        }
    }

    /// Counter-wise difference against an earlier snapshot.
    pub fn since(&self, earlier: &SynthStats) -> SynthStats {
        SynthStats {
            attempts: self.attempts - earlier.attempts,
            hits: self.hits - earlier.hits,
            candidates: self.candidates - earlier.candidates,
            fallbacks: self.fallbacks - earlier.fallbacks,
            budget_exhausted: self.budget_exhausted - earlier.budget_exhausted,
        }
    }
}

/// Reads the process-global synthesis counters.
pub fn synth_stats() -> SynthStats {
    SynthStats {
        attempts: ATTEMPTS.load(Ordering::Relaxed),
        hits: HITS.load(Ordering::Relaxed),
        candidates: CANDIDATES.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
        budget_exhausted: BUDGET_EXHAUSTED.load(Ordering::Relaxed),
    }
}

/// Mirrors the synthesis counters into `registry` as `synth.*` gauges,
/// the same snapshot-point bridge as `publish_simba_metrics` /
/// `publish_eval_engine_metrics`.
pub fn publish_synth_metrics(registry: &mba_obs::MetricsRegistry) {
    let s = synth_stats();
    registry.gauge("synth.attempts").set(s.attempts as i64);
    registry.gauge("synth.hits").set(s.hits as i64);
    registry.gauge("synth.candidates").set(s.candidates as i64);
    registry.gauge("synth.fallbacks").set(s.fallbacks as i64);
    registry
        .gauge("synth.budget_exhausted")
        .set(s.budget_exhausted as i64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_publish() {
        let before = synth_stats();
        record_attempt();
        record_hit();
        record_candidates(7);
        record_fallback();
        record_budget_exhausted();
        let delta = synth_stats().since(&before);
        assert_eq!(delta.attempts, 1);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.candidates, 7);
        assert_eq!(delta.fallbacks, 1);
        assert_eq!(delta.budget_exhausted, 1);
        assert!(delta.hit_rate() > 0.0);

        let registry = mba_obs::MetricsRegistry::new();
        publish_synth_metrics(&registry);
        let snap = registry.snapshot();
        assert!(snap.gauge("synth.attempts") >= 1);
        assert!(snap.gauge("synth.candidates") >= 7);
    }
}
