//! `mba-synth`: an enumerative synthesis tier for residual MBA
//! expressions.
//!
//! The algebraic pipeline (linear/semi-linear/polynomial reduction)
//! stops at expressions its classification machinery can handle;
//! everything else passes through unsimplified. This crate recovers
//! simple forms for exactly those residual cases the way the
//! GPU-synthesis line of work does (Bathie et al., arXiv 2605.08243;
//! SSLEM, arXiv 2208.05612): enumerate every small expression over the
//! target's variables bottom-up, deduplicate candidates by *semantic
//! signature* as the pool grows, and look the target up by its own
//! signature.
//!
//! Soundness is layered (see `DESIGN.md` §15):
//!
//! 1. a candidate is considered only when its complete width-1 truth
//!    table (`2^t` rows, one [`mba_expr::EvalProgram::eval_bits_wide`]
//!    pass) equals the target's — a *necessary* condition, since
//!    truncation to width 1 commutes with every MBA operator;
//! 2. the in-key probe vector ([`PROBE_LANES`] deterministic full-width
//!    valuations) must also match, separating arithmetic variants of
//!    one boolean function (`x+y` vs `x^y`);
//! 3. before substituting, the winner is re-verified against the target
//!    on [`VERIFY_LANES`] *further* deterministic valuations at the
//!    request width — a mismatch keeps the original and counts a
//!    fallback, so a rejection is never result-changing.
//!
//! Equivalence at the request width implies equivalence at every
//! narrower width (low bits of every MBA operator depend only on low
//! bits of the inputs), so a width-64 acceptance is safe for narrower
//! consumers of the same result.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mba_expr::{metrics, EvalProgram, Expr, Ident};

mod pool;
mod signature;
mod stats;

use pool::Pool;
use signature::{probe_row, signature_of};

pub use signature::{Signature, TtSig, MAX_SYNTH_VARS, PROBE_LANES, VERIFY_LANES};
pub use stats::{publish_synth_metrics, synth_stats, SynthStats};

/// Tuning knobs for the synthesis tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Bit width of the target ring; probe valuations (and therefore
    /// acceptances) are verified at this width.
    pub width: u32,
    /// Largest candidate node count enumerated into the pool.
    pub max_nodes: usize,
    /// Enumeration cap, checked per candidate — truncation at the cap
    /// is count-based and therefore deterministic.
    pub max_candidates: u64,
    /// Wall-clock budget for one pool build, checked only *between*
    /// node-count levels so a slow machine truncates at a level
    /// boundary, never mid-level.
    pub budget_ms: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            width: 64,
            max_nodes: 5,
            // Large enough that a 3-variable pool enumerates all of
            // level 5 (ending at the `Add` split that reaches targets
            // like `x+y+z`); a 2-variable pool finishes uncapped at
            // roughly 4k candidates.
            max_candidates: 20_000,
            budget_ms: 1000,
        }
    }
}

/// The synthesis engine: owns per-variable-set candidate pools (built
/// lazily, cached for the engine's lifetime) and answers lookup
/// queries. All methods take `&self`; the type is `Send + Sync`, so one
/// engine can back every worker of a batch simplifier — pools warm
/// across the whole corpus.
#[derive(Debug)]
pub struct Synthesizer {
    config: SynthConfig,
    pools: Mutex<HashMap<Vec<Ident>, Arc<Pool>>>,
}

impl Default for Synthesizer {
    fn default() -> Self {
        Synthesizer::new(SynthConfig::default())
    }
}

impl Synthesizer {
    /// Creates an engine with the given configuration.
    pub fn new(config: SynthConfig) -> Synthesizer {
        Synthesizer {
            config,
            pools: Mutex::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SynthConfig {
        &self.config
    }

    /// Attempts to synthesize a strictly simpler equivalent of
    /// `target`.
    ///
    /// Returns `Some(candidate)` only when the candidate's complete
    /// width-1 truth table and in-key probe vector match the target's
    /// *and* a [`VERIFY_LANES`]-point re-verification at the request
    /// width agrees *and* the candidate scores strictly better than the
    /// target. Returns `None` otherwise — the caller keeps its input,
    /// so a `None` is never result-changing.
    pub fn synthesize(&self, target: &Expr) -> Option<Expr> {
        self.query(target, true)
    }

    /// [`Synthesizer::synthesize`] with **every probe check skipped**:
    /// the first bucket entry with a matching width-1 table and a
    /// strictly better score is accepted outright.
    ///
    /// This exists solely for the verification subsystem's
    /// `SynthUnsoundAccept` fault injection — the width-1 table alone
    /// cannot separate `x+y` from `x^y`, so an accept without probes is
    /// demonstrably unsound and the fuzz harness must catch it.
    /// Production code must never call this.
    pub fn synthesize_unchecked(&self, target: &Expr) -> Option<Expr> {
        self.query(target, false)
    }

    fn query(&self, target: &Expr, checked: bool) -> Option<Expr> {
        let vars: Vec<Ident> = target.vars().into_iter().collect();
        if vars.is_empty() || vars.len() > MAX_SYNTH_VARS {
            return None;
        }
        if target.node_count() < 2 {
            // Already a leaf; nothing can be strictly smaller.
            return None;
        }
        stats::record_attempt();

        let target_program = EvalProgram::compile(target);
        let target_sig = signature_of(&target_program, &vars, self.config.width);
        let target_score = score(target);
        let pool = self.pool_for(&vars);
        let bucket = pool.by_tt.get(&target_sig.tt)?;

        for entry in bucket {
            if score(&entry.expr) >= target_score {
                continue;
            }
            if checked {
                if entry.probes != target_sig.probes {
                    // A different arithmetic lift of the same boolean
                    // function — not our target.
                    continue;
                }
                // Probe re-verify on fresh valuations (the in-key
                // probes already matched; these are VERIFY_LANES new
                // points). A mismatch means the signature collided:
                // keep the original, count the fallback, and bail —
                // weaker matches later in the bucket would collide for
                // the same reason.
                let candidate_program = EvalProgram::compile(&entry.expr);
                let k0 = PROBE_LANES as u64;
                let want = probe_row(&target_program, &vars, self.config.width, k0, VERIFY_LANES);
                let got = probe_row(&candidate_program, &vars, self.config.width, k0, VERIFY_LANES);
                if want != got {
                    stats::record_fallback();
                    return None;
                }
            }
            stats::record_hit();
            return Some(entry.expr.clone());
        }
        None
    }

    /// Returns (building on first use) the candidate pool for `vars`.
    ///
    /// The build runs under the cache lock: concurrent batch workers
    /// querying the same variable set wait for one build instead of
    /// duplicating it, and every worker sees the identical
    /// (deterministically enumerated) pool.
    fn pool_for(&self, vars: &[Ident]) -> Arc<Pool> {
        let mut pools = self.pools.lock().expect("synth pool lock poisoned");
        if let Some(pool) = pools.get(vars) {
            return Arc::clone(pool);
        }
        let pool = Arc::new(Pool::build(vars, &self.config));
        pools.insert(vars.to_vec(), Arc::clone(&pool));
        pool
    }
}

/// Simplicity score, replicating the core simplifier's ordering: MBA
/// alternation dominates, then AST size, then printed length. A
/// substitution is accepted only when *strictly* smaller under this
/// tuple, so synthesis can never make a result worse.
fn score(e: &Expr) -> (usize, usize, usize) {
    (metrics::alternation(e), e.node_count(), e.to_string().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    fn synth() -> Synthesizer {
        Synthesizer::default()
    }

    /// The flagship residual case: a parity opaque zero
    /// `(q*(q+1)) & 1 ≡ 0` (consecutive integers ⇒ even product)
    /// wrapped around a small ground truth. The algebraic tiers cannot
    /// see mod-2 reasoning; synthesis recovers the ground truth.
    #[test]
    fn recovers_ground_truth_behind_parity_opaque_zero() {
        let s = synth();
        for (src, want) in [
            ("x + y + ((x*(x+1)) & 1)", "x+y"),
            ("(x & y) ^ (((x+y)*(x+y+1)) & 1)", "x&y"),
            ("x - y + ((y*(y+1)) & 1)", "x-y"),
            // Three variables and a 5-node truth: reaching the `Add`
            // split of level 5 needs the default candidate cap to
            // cover the full 3-variable enumeration. The (1,3) split
            // enumerates first, hence the right-associated rendering.
            ("x + y + z - (((x+z)*(x+z+1)) & 1)", "x+(y+z)"),
        ] {
            let target: Expr = src.parse().unwrap();
            let got = s.synthesize(&target).unwrap_or_else(|| {
                panic!("no synthesis for `{src}`")
            });
            assert_eq!(got.to_string(), want, "synthesizing `{src}`");
        }
    }

    #[test]
    fn accepted_results_are_equivalent_on_random_points() {
        let s = synth();
        let target: Expr = "x + y + ((x*(x+1)) & 1)".parse().unwrap();
        let got = s.synthesize(&target).unwrap();
        for (x, y) in [
            (0u64, 0u64),
            (3, 5),
            (u64::MAX, 1),
            (0xdead_beef, 0xfeed_f00d),
        ] {
            let v = Valuation::new().with("x", x).with("y", y);
            for w in [1u32, 7, 8, 32, 64] {
                assert_eq!(target.eval(&v, w), got.eval(&v, w), "width {w}");
            }
        }
    }

    #[test]
    fn never_returns_a_non_improvement() {
        let s = synth();
        // Already-minimal residual forms: nothing strictly smaller is
        // equivalent, so the tier must return None.
        for src in ["x * y", "x*y + z", "(x&y)*(x|y)"] {
            let target: Expr = src.parse().unwrap();
            assert_eq!(
                s.synthesize(&target),
                None,
                "`{src}` has no smaller equivalent"
            );
        }
    }

    #[test]
    fn gates_reject_leaves_wide_var_sets_and_constants() {
        let s = synth();
        let before = synth_stats();
        assert_eq!(s.synthesize(&"x".parse().unwrap()), None);
        assert_eq!(s.synthesize(&"17".parse().unwrap()), None);
        let nine: Expr = "v0&v1&v2&v3&v4&v5&v6&v7&v8".parse().unwrap();
        assert_eq!(nine.vars().len(), 9);
        assert_eq!(s.synthesize(&nine), None);
        // None of the gated queries count as attempts.
        assert_eq!(synth_stats().since(&before).attempts, 0);
    }

    #[test]
    fn unchecked_mode_accepts_the_width_one_collision() {
        // Honest synthesis recovers x+y; the unchecked variant grabs
        // the first width-1-table match, which enumeration order
        // guarantees is x^y — a real corruption (6 vs 0 at x=y=3).
        let s = synth();
        let target: Expr = "x + y + ((x*(x+1)) & 1)".parse().unwrap();
        let honest = s.synthesize(&target).unwrap();
        let unsound = s.synthesize_unchecked(&target).unwrap();
        assert_eq!(honest.to_string(), "x+y");
        assert_eq!(unsound.to_string(), "x^y");
        let v = Valuation::new().with("x", 3).with("y", 3);
        assert_ne!(target.eval(&v, 8), unsound.eval(&v, 8));
    }

    #[test]
    fn fallback_counter_and_probe_reverify_path() {
        // Counters move across a hit.
        let s = synth();
        let before = synth_stats();
        let target: Expr = "x + y + ((x*(x+1)) & 1)".parse().unwrap();
        assert!(s.synthesize(&target).is_some());
        let delta = synth_stats().since(&before);
        assert_eq!(delta.attempts, 1);
        assert_eq!(delta.hits, 1);
        assert!(delta.candidates > 0, "pool build must count candidates");
    }

    #[test]
    fn pools_are_cached_per_variable_set() {
        let s = synth();
        let before = synth_stats();
        let a: Expr = "x + y + ((x*(x+1)) & 1)".parse().unwrap();
        let b: Expr = "x - y + ((y*(y+1)) & 1)".parse().unwrap();
        s.synthesize(&a);
        let after_first = synth_stats().since(&before);
        s.synthesize(&b);
        let after_second = synth_stats().since(&before);
        // Same {x, y} variable set: the second query reuses the pool,
        // so the candidate counter does not move again.
        assert_eq!(after_first.candidates, after_second.candidates);
        assert_eq!(after_second.attempts, 2);
    }

    #[test]
    fn queries_are_deterministic() {
        let a = synth();
        let b = synth();
        for src in [
            "x + y + ((x*(x+1)) & 1)",
            "x*y + z",
            "(x & y) ^ (((x+y)*(x+y+1)) & 1)",
        ] {
            let target: Expr = src.parse().unwrap();
            assert_eq!(
                a.synthesize(&target),
                b.synthesize(&target),
                "`{src}` must synthesize identically across engines"
            );
        }
    }
}
