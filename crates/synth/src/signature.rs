//! Semantic signatures for synthesis candidates: the complete width-1
//! truth table packed into one SIMD-wide block, plus deterministic
//! full-width probe evaluations.
//!
//! The width-1 table alone is a *necessary* condition for equivalence
//! — the low result bit of every MBA operator depends only on the low
//! bits of its inputs, so truncation to width 1 commutes with the whole
//! grammar — but it is not sufficient (`x+y` and `x^y` agree at width
//! 1 and nowhere else). The probe vector restores discrimination at the
//! request width: eight deterministic valuations, two structured
//! corners (all-zeros, all-ones) plus splitmix64-derived points, so
//! arithmetic variants of one boolean function stay distinguishable.
//!
//! Both halves come out of the bit-parallel tape engine: the table is
//! one [`EvalProgram::eval_bits_wide`] pass (`64 × WIDE_LANES = 256`
//! rows, enough for the full table of up to [`MAX_SYNTH_VARS`] = 8
//! variables), the probes one [`EvalProgram::eval_batch`] pass.

use mba_expr::{row_bit_pattern, EvalProgram, Ident, WIDE_LANES};

/// Largest variable count the synthesis tier enumerates over. Eight
/// variables fill exactly one wide block (`2^8 = 64 × WIDE_LANES`
/// truth-table rows), so every signature costs one tape pass.
pub const MAX_SYNTH_VARS: usize = 8;

/// Deterministic full-width probe valuations carried *inside* the
/// dedup key (distinguishing arithmetic variants of one boolean
/// function).
pub const PROBE_LANES: usize = 8;

/// Additional deterministic valuations re-checked before an acceptance
/// is substituted into the output (the "probe re-verify" of the
/// soundness contract).
pub const VERIFY_LANES: usize = 24;

/// The packed width-1 truth table: row `r` of the candidate's boolean
/// function lands in bit `r % 64` of word `r / 64`, rows beyond `2^t`
/// masked to zero.
pub type TtSig = [u64; WIDE_LANES];

/// The dedup key: complete width-1 table plus the in-key probe vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Packed width-1 truth table over the query's variable order.
    pub tt: TtSig,
    /// `PROBE_LANES` full-width evaluations on the deterministic probe
    /// valuations.
    pub probes: [u64; PROBE_LANES],
}

/// Deterministic probe value for variable slot `j` of probe `k`: two
/// structured corners, one small-integer ramp, then a splitmix64
/// finalizer (the same mixer the SiMBA fast path verifies with, offset
/// so the streams never coincide).
pub(crate) fn probe_value(k: u64, j: u64) -> u64 {
    match k {
        0 => 0,
        1 => u64::MAX,
        2 => j + 1,
        _ => {
            let mut z = ((k ^ 0x0073_796e_7468) << 32) ^ j.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Evaluates `program` on probes `k0 .. k0 + lanes`, one full-width
/// value per probe. `vars` is the *query's* sorted variable list;
/// `program` may bind any subset of it (candidates need not mention
/// every variable), and each bound variable takes the probe value of
/// its position in the full list, so sub-expressions evaluate
/// consistently with the target.
///
/// # Panics
///
/// Panics if `program` binds a variable outside `vars` — callers only
/// hand in programs built over (subsets of) `vars`.
pub(crate) fn probe_row(
    program: &EvalProgram,
    vars: &[Ident],
    width: u32,
    k0: u64,
    lanes: usize,
) -> Vec<u64> {
    let columns: Vec<Vec<u64>> = program
        .vars()
        .iter()
        .map(|name| {
            let j = vars
                .binary_search(name)
                .expect("program variable outside the query's variable list");
            (0..lanes).map(|k| probe_value(k0 + k as u64, j as u64)).collect()
        })
        .collect();
    program.eval_batch(lanes, &columns, width)
}

/// The full signature of `program` over `vars` (sorted, 1 ..=
/// [`MAX_SYNTH_VARS`] entries) at the request `width`: one wide tape
/// pass for the complete width-1 table, one batch pass for the probes.
///
/// Row convention matches `TruthTable` / the SiMBA corner order: the
/// first variable in `vars` is the most significant bit of the row
/// index (variable `j` toggles with period `2^(t-1-j)` rows).
pub(crate) fn signature_of(program: &EvalProgram, vars: &[Ident], width: u32) -> Signature {
    let t = vars.len();
    debug_assert!((1..=MAX_SYNTH_VARS).contains(&t));
    let rows = 1usize << t;

    let blocks: Vec<[u64; WIDE_LANES]> = program
        .vars()
        .iter()
        .map(|name| {
            let j = vars
                .binary_search(name)
                .expect("program variable outside the query's variable list");
            let p = (t - 1 - j) as u32;
            std::array::from_fn(|b| row_bit_pattern(p, b))
        })
        .collect();
    let mut tt = program.eval_bits_wide(&blocks);

    // Mask off the lanes past the real table: rows repeat with period
    // 2^t, so everything beyond the first 2^t row positions is echo.
    for (w, word) in tt.iter_mut().enumerate() {
        let lo = w * 64;
        if lo >= rows {
            *word = 0;
        } else if rows - lo < 64 {
            *word &= (1u64 << (rows - lo)) - 1;
        }
    }

    let probe_vals = probe_row(program, vars, width, 0, PROBE_LANES);
    let mut probes = [0u64; PROBE_LANES];
    probes.copy_from_slice(&probe_vals);
    Signature { tt, probes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::{Expr, Valuation};

    fn vars_of(e: &Expr) -> Vec<Ident> {
        e.vars().into_iter().collect()
    }

    #[test]
    fn width_one_agreement_of_add_and_xor_is_separated_by_probes() {
        let add: Expr = "x + y".parse().unwrap();
        let xor: Expr = "x ^ y".parse().unwrap();
        let vars = vars_of(&add);
        let sa = signature_of(&EvalProgram::compile(&add), &vars, 64);
        let sx = signature_of(&EvalProgram::compile(&xor), &vars, 64);
        assert_eq!(sa.tt, sx.tt, "width-1 tables must coincide");
        assert_ne!(sa.probes, sx.probes, "probes must separate them");
    }

    #[test]
    fn table_rows_match_scalar_evaluation() {
        let e: Expr = "(x & ~y) | (y ^ z)".parse().unwrap();
        let vars = vars_of(&e);
        let t = vars.len();
        let sig = signature_of(&EvalProgram::compile(&e), &vars, 64);
        for r in 0..(1usize << t) {
            let v: Valuation = vars
                .iter()
                .enumerate()
                .map(|(j, name)| {
                    let bit = (r >> (t - 1 - j)) & 1;
                    (name.clone(), bit as u64)
                })
                .collect();
            let expect = e.eval(&v, 1);
            let got = (sig.tt[r / 64] >> (r % 64)) & 1;
            assert_eq!(got, expect, "row {r}");
        }
        // Echo lanes past the real table are masked off.
        assert_eq!(sig.tt[0] >> (1 << t), 0);
        assert_eq!(sig.tt[1], 0);
    }

    #[test]
    fn eight_variables_fill_every_wide_lane() {
        let src = "v0 & v1 | v2 & v3 | v4 & v5 | v6 & v7";
        let e: Expr = src.parse().unwrap();
        let vars = vars_of(&e);
        assert_eq!(vars.len(), 8);
        let sig = signature_of(&EvalProgram::compile(&e), &vars, 64);
        assert!(sig.tt.iter().any(|&w| w != 0));
        // Row 255 (all variables 1) must be set: the OR of ANDs is 1.
        assert_eq!(sig.tt[3] >> 63, 1);
    }

    #[test]
    fn candidates_over_variable_subsets_bind_consistently() {
        // `y` alone, queried over {x, y}: its probe values must be the
        // slot-1 probes, not slot-0's.
        let full: Expr = "0*x + y".parse().unwrap();
        let sub: Expr = "y".parse().unwrap();
        let vars = vars_of(&full);
        let a = signature_of(&EvalProgram::compile(&full), &vars, 64);
        let b = signature_of(&EvalProgram::compile(&sub), &vars, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn probe_corners_are_structured() {
        assert_eq!(probe_value(0, 3), 0);
        assert_eq!(probe_value(1, 5), u64::MAX);
        assert_eq!(probe_value(2, 5), 6);
        assert_ne!(probe_value(3, 0), probe_value(3, 1));
        assert_ne!(probe_value(3, 0), probe_value(4, 0));
    }
}
