//! The candidate pool: bottom-up enumeration of small expressions over
//! a fixed variable set, deduplicated by semantic signature as it
//! grows.
//!
//! Enumeration is in node-count order (the paper's Table-5 catalog
//! generalized past pure-bitwise forms): size 1 is the variables plus a
//! few small constants, size `n` applies `~`/`-` to size `n−1`
//! representatives and every binary operator to size pairs summing to
//! `n−1`. Only *semantically new* expressions — new `(truth table,
//! probe vector)` signature — become representatives and seed further
//! growth, so the pool's breadth is bounded by the number of distinct
//! small functions, not the (exponentially larger) number of candidate
//! syntax trees.
//!
//! Budgets keep a build bounded: `max_candidates` is checked per
//! enumerated candidate (count-based, so truncation is deterministic),
//! `budget_ms` only **between** size levels (a wall-clock check inside
//! a level could truncate at a machine-dependent point and break the
//! byte-identity contracts downstream).

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use mba_expr::{BinOp, EvalProgram, Expr, Ident, UnOp};

use crate::signature::{signature_of, Signature, TtSig, PROBE_LANES};
use crate::{stats, SynthConfig};

/// Constant leaves seeded at size 1. Small masks and ring units cover
/// the constants the catalog's minimal forms actually use.
const SMALL_CONSTS: [i128; 4] = [0, 1, 2, -1];

/// Unary growth operators.
const UN_OPS: [UnOp; 2] = [UnOp::Not, UnOp::Neg];

/// Binary growth operators. `Xor` is enumerated before `Add` so the
/// width-1 agreement of `x^y` and `x+y` is resolved by *probes*, never
/// by luck of ordering — the `SynthUnsoundAccept` fault injection
/// exploits exactly this order to demonstrate what skipping the probe
/// checks accepts.
const BIN_OPS: [BinOp; 6] = [
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
];

/// One deduplicated candidate: the expression and the full-width part
/// of its signature (the width-1 table is the bucket key it lives
/// under).
#[derive(Debug)]
pub(crate) struct PoolEntry {
    /// The candidate expression (built only from the pool's variables
    /// and [`SMALL_CONSTS`]).
    pub(crate) expr: Expr,
    /// In-key probe vector at the pool's width; see
    /// [`crate::signature::Signature`].
    pub(crate) probes: [u64; PROBE_LANES],
}

/// A built candidate pool for one sorted variable set at one width.
#[derive(Debug)]
pub(crate) struct Pool {
    /// Packed width-1 truth table → entries in enumeration order
    /// (node-count order, so the first score-improving match is also a
    /// smallest one).
    pub(crate) by_tt: HashMap<TtSig, Vec<PoolEntry>>,
    /// Whether a budget cut enumeration short.
    pub(crate) truncated: bool,
    /// Candidates enumerated (pre-dedup).
    pub(crate) candidates: u64,
}

/// Builder state threaded through the level loops.
struct Builder<'a> {
    vars: &'a [Ident],
    config: &'a SynthConfig,
    seen: HashSet<Signature>,
    pool: Pool,
    /// Set when `max_candidates` is reached; stops all further growth.
    full: bool,
}

impl Builder<'_> {
    /// Considers one candidate: counts it, computes its signature, and
    /// keeps it (bucket + `fresh` representatives) only if the
    /// signature is new.
    fn add(&mut self, e: Expr, fresh: &mut Vec<Expr>) {
        if self.full {
            return;
        }
        if self.pool.candidates >= self.config.max_candidates {
            self.full = true;
            self.pool.truncated = true;
            return;
        }
        self.pool.candidates += 1;
        let program = EvalProgram::compile(&e);
        let sig = signature_of(&program, self.vars, self.config.width);
        if !self.seen.insert(sig) {
            return;
        }
        fresh.push(e.clone());
        self.pool
            .by_tt
            .entry(sig.tt)
            .or_default()
            .push(PoolEntry {
                expr: e,
                probes: sig.probes,
            });
    }
}

impl Pool {
    /// Enumerates the pool for `vars` (sorted, `1..=MAX_SYNTH_VARS`
    /// entries) under `config`'s width and budgets.
    pub(crate) fn build(vars: &[Ident], config: &SynthConfig) -> Pool {
        let deadline = Instant::now() + Duration::from_millis(config.budget_ms);
        let mut b = Builder {
            vars,
            config,
            seen: HashSet::new(),
            pool: Pool {
                by_tt: HashMap::new(),
                truncated: false,
                candidates: 0,
            },
            full: false,
        };

        // reps[n] = size-n representatives (unique signatures only);
        // index 0 unused.
        let mut reps: Vec<Vec<Expr>> = vec![Vec::new(); config.max_nodes.max(1) + 1];

        let mut level1 = Vec::new();
        for v in vars {
            b.add(Expr::var(v.clone()), &mut level1);
        }
        for c in SMALL_CONSTS {
            b.add(Expr::constant(c), &mut level1);
        }
        reps[1] = level1;

        for n in 2..=config.max_nodes {
            if b.full {
                break;
            }
            if Instant::now() >= deadline {
                b.pool.truncated = true;
                break;
            }
            let mut fresh = Vec::new();
            // Unary over the previous level.
            for child in &reps[n - 1] {
                for op in UN_OPS {
                    b.add(Expr::unary(op, child.clone()), &mut fresh);
                }
            }
            // Binary over size splits a + b = n − 1.
            for a in 1..n - 1 {
                let c = n - 1 - a;
                for op in BIN_OPS {
                    let commutative = !matches!(op, BinOp::Sub);
                    if commutative && a > c {
                        continue;
                    }
                    for (i, lhs) in reps[a].iter().enumerate() {
                        let rhs_from = if commutative && a == c { i } else { 0 };
                        for rhs in &reps[c][rhs_from..] {
                            b.add(Expr::binary(op, lhs.clone(), rhs.clone()), &mut fresh);
                        }
                    }
                }
            }
            reps[n] = fresh;
        }

        stats::record_candidates(b.pool.candidates);
        if b.pool.truncated {
            stats::record_budget_exhausted();
        }
        b.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(names: &[&str]) -> Vec<Ident> {
        names.iter().map(|n| Ident::new(*n)).collect()
    }

    #[test]
    fn build_is_deterministic() {
        let vars = idents(&["x", "y"]);
        let config = SynthConfig::default();
        let a = Pool::build(&vars, &config);
        let b = Pool::build(&vars, &config);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(a.truncated, b.truncated);
        assert_eq!(a.by_tt.len(), b.by_tt.len());
        for (tt, entries) in &a.by_tt {
            let other = &b.by_tt[tt];
            assert_eq!(entries.len(), other.len());
            for (ea, eb) in entries.iter().zip(other) {
                assert_eq!(ea.expr, eb.expr, "bucket order must be stable");
                assert_eq!(ea.probes, eb.probes);
            }
        }
    }

    #[test]
    fn buckets_are_in_node_count_order() {
        let vars = idents(&["x", "y"]);
        let pool = Pool::build(&vars, &SynthConfig::default());
        for entries in pool.by_tt.values() {
            let counts: Vec<usize> = entries.iter().map(|e| e.expr.node_count()).collect();
            let mut sorted = counts.clone();
            sorted.sort_unstable();
            assert_eq!(counts, sorted, "enumeration must grow by size");
        }
    }

    #[test]
    fn xor_enumerates_before_add_in_shared_bucket() {
        // x^y and x+y share a width-1 table; the bucket must hold the
        // xor first (the SynthUnsoundAccept demonstration depends on
        // this order) and keep both thanks to the in-key probes.
        let vars = idents(&["x", "y"]);
        let pool = Pool::build(&vars, &SynthConfig::default());
        let xor: Expr = "x ^ y".parse().unwrap();
        let sig = signature_of(&EvalProgram::compile(&xor), &vars, 64);
        let bucket = &pool.by_tt[&sig.tt];
        let pos = |s: &str| {
            bucket
                .iter()
                .position(|e| e.expr.to_string() == s)
                .unwrap_or_else(|| panic!("{s} missing from bucket"))
        };
        assert!(pos("x^y") < pos("x+y"));
    }

    #[test]
    fn candidate_cap_truncates_deterministically() {
        let vars = idents(&["x", "y", "z"]);
        let config = SynthConfig {
            max_candidates: 100,
            ..SynthConfig::default()
        };
        let pool = Pool::build(&vars, &config);
        assert!(pool.truncated);
        assert_eq!(pool.candidates, 100);
    }

    #[test]
    fn single_variable_pool_stays_small_and_untruncated() {
        let vars = idents(&["x"]);
        let config = SynthConfig {
            max_nodes: 3,
            ..SynthConfig::default()
        };
        let pool = Pool::build(&vars, &config);
        assert!(!pool.truncated);
        assert!(pool.candidates < 200, "got {}", pool.candidates);
    }
}
