//! Oracle self-checks (ISSUE satellite): every time the SAT miter
//! reports `NotEquivalent`, the counterexample's
//! [`Counterexample::to_valuation`] re-evaluation must actually witness
//! the difference — on *both* the `mba-smt` API surface and through the
//! `mba-verify` oracle stack (which panics on a bogus witness rather
//! than propagate it).

use mba_expr::Expr;
use mba_smt::{CheckOutcome, MiterBudget, SmtSolver, SolverProfile};
use mba_verify::{EquivalenceOracle, OracleConfig, OracleStats, Verdict};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inequivalent pairs spanning the failure modes the fuzzer meets:
/// off-by-one, dropped terms, wrong operator, sign errors, and
/// bit-pattern-dependent differences.
fn inequivalent_pairs() -> Vec<(Expr, Expr)> {
    [
        ("x + y", "x + y + 1"),
        ("x * y", "x * y + x"),
        ("x | y", "x ^ y"),
        ("x + y", "x | y"),
        ("x - y", "y - x"),
        ("~x", "-x"),
        ("x & (y | z)", "(x & y) | z"),
        ("2*x", "x"),
        ("x", "0"),
        ("(x ^ y) + 2*(x & y)", "x + y + 1"),
    ]
    .into_iter()
    .map(|(l, r)| (l.parse().unwrap(), r.parse().unwrap()))
    .collect()
}

#[test]
fn every_sat_miter_witness_reevaluates_to_a_difference() {
    let solver = SmtSolver::new(SolverProfile::boolector_style());
    let mut checked = 0;
    for width in [4, 8, 16] {
        for (lhs, rhs) in inequivalent_pairs() {
            let result = solver.check_equivalence_budgeted(
                &lhs,
                &rhs,
                width,
                &MiterBudget::unlimited(),
            );
            let CheckOutcome::NotEquivalent(cex) = result.outcome else {
                panic!("`{lhs}` vs `{rhs}` at width {width}: expected NotEquivalent");
            };
            let v = cex.to_valuation();
            assert_ne!(
                lhs.eval(&v, width),
                rhs.eval(&v, width),
                "witness {cex} does not reproduce for `{lhs}` vs `{rhs}` at width {width}"
            );
            checked += 1;
        }
    }
    assert_eq!(checked, 30);
}

#[test]
fn oracle_miter_mismatches_carry_validated_witnesses() {
    // Disable the cheaper tiers so every refutation is forced through
    // the SAT miter and its witness-validation assertion.
    let config = OracleConfig {
        widths: vec![],
        random_valuations: 0,
        ..OracleConfig::default()
    };
    let oracle = EquivalenceOracle::new(config);
    let mut stats = OracleStats::default();
    let mut rng = StdRng::seed_from_u64(7);
    let mut miter_hits = 0;
    for (lhs, rhs) in inequivalent_pairs() {
        match oracle.check(&lhs, &rhs, &mut rng, &mut stats) {
            Verdict::Mismatch(m) => {
                assert_ne!(m.lhs_value, m.rhs_value);
                assert_eq!(
                    lhs.eval(&m.valuation, m.width),
                    m.lhs_value,
                    "recorded lhs value must match re-evaluation"
                );
                assert_eq!(rhs.eval(&m.valuation, m.width), m.rhs_value);
                if m.tier == mba_verify::OracleTier::Miter {
                    miter_hits += 1;
                }
            }
            v => panic!("`{lhs}` vs `{rhs}`: expected mismatch, got {v:?}"),
        }
    }
    assert!(stats.miter_mismatches > 0);
    assert!(miter_hits > 0, "at least the mixed pairs must reach the miter");
}

#[test]
fn random_inequivalent_perturbations_are_always_witnessed() {
    // Randomized sweep: perturb a random expression by +c (c != 0 mod
    // 2^w for the checked widths) and demand a validated witness.
    let oracle = EquivalenceOracle::new(OracleConfig::default());
    let mut rng = StdRng::seed_from_u64(99);
    let mut stats = OracleStats::default();
    let config = mba_gen::RandomExprConfig::default();
    for i in 0..40 {
        let e = mba_gen::random_expr(&mut rng, &config);
        let c = 1 + (rng.gen::<u8>() as i128 % 7);
        let perturbed = Expr::binary(mba_expr::BinOp::Add, e.clone(), Expr::Const(c));
        let mut case_rng = StdRng::seed_from_u64(i);
        match oracle.check(&e, &perturbed, &mut case_rng, &mut stats) {
            Verdict::Mismatch(m) => assert_ne!(m.lhs_value, m.rhs_value),
            v => panic!("`{e}` vs `{perturbed}`: expected mismatch, got {v:?}"),
        }
    }
}
