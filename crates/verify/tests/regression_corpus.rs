//! Replays the checked-in regression corpus (`crates/verify/corpus/`)
//! as a normal `cargo test`: every reproducer — seed entries and any
//! shrunk discrepancy `mba_fuzz --write-corpus` ever appended — goes
//! through all four simplify paths (cached, uncached, batch, and
//! fast-path-off) and the full oracle stack, and no invariant may
//! break.

use mba_solver::{Simplifier, SimplifyConfig};
use mba_verify::corpus::{default_corpus_dir, load_dir};
use mba_verify::{EquivalenceOracle, OracleConfig, OracleStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn corpus_replays_clean() {
    let entries = load_dir(&default_corpus_dir()).expect("corpus dir must load");
    assert!(!entries.is_empty(), "corpus must never be empty");

    let cached = Simplifier::new();
    let uncached = Simplifier::with_config(SimplifyConfig {
        use_cache: false,
        ..SimplifyConfig::default()
    });
    // The SiMBA fast path is an optimisation, not a semantics change:
    // disabling it must yield byte-identical output on every entry.
    let nosimba = Simplifier::with_config(SimplifyConfig {
        use_simba: false,
        ..SimplifyConfig::default()
    });
    // Replays are few, so afford the miter a larger budget than the
    // fuzzer's default.
    let oracle = EquivalenceOracle::new(OracleConfig {
        miter_conflicts: 50_000,
        ..OracleConfig::default()
    });
    let mut stats = OracleStats::default();

    let exprs: Vec<_> = entries.iter().map(|(_, r)| r.expr.clone()).collect();
    let batch = cached.simplify_batch_with_jobs(&exprs, 2);

    for (i, (path, rep)) in entries.iter().enumerate() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let cached_out = cached.simplify_detailed(&rep.expr).output;
        let uncached_out = uncached.simplify_detailed(&rep.expr).output;
        assert_eq!(
            cached_out, batch[i].output,
            "{name}: cached and batch paths diverge"
        );
        assert_eq!(
            cached_out, uncached_out,
            "{name}: cached and uncached paths diverge"
        );
        assert_eq!(
            cached_out,
            nosimba.simplify_detailed(&rep.expr).output,
            "{name}: fast-path-off output diverges"
        );
        let mut rng = StdRng::seed_from_u64(i as u64);
        let verdict = oracle.check(&rep.expr, &cached_out, &mut rng, &mut stats);
        assert!(
            verdict.is_ok(),
            "{name}: `{}` simplifies unsoundly to `{cached_out}`: {verdict:?}",
            rep.expr
        );
    }
    // The seed entries are small; the oracle should be *proving* them,
    // not shrugging. Guards against silently de-fanging the corpus by
    // shrinking budgets.
    assert!(
        stats.proofs() >= entries.len() as u64 / 2,
        "too few corpus proofs: {stats:?}"
    );
}

#[test]
fn figure1_seed_entry_simplifies_to_xy() {
    // The flagship corpus entry must keep its known minimal form.
    let entries = load_dir(&default_corpus_dir()).unwrap();
    let fig1 = entries
        .iter()
        .find(|(p, _)| p.file_name().unwrap() == "seed-figure1.txt")
        .expect("figure-1 seed entry present");
    assert_eq!(
        Simplifier::new().simplify(&fig1.1.expr).to_string(),
        "x*y"
    );
}
