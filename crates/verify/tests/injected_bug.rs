//! Fault-injection self-tests: the whole verification subsystem is
//! worthless if it cannot catch a deliberately broken simplifier. Each
//! [`InjectedBug`] variant corrupts the simplifier output behind a
//! test-only config flag; the fuzzer must (a) flag a discrepancy,
//! (b) attribute it to unsoundness (not path divergence — the bug is
//! applied identically on every path), and (c) shrink it to a
//! reproducer of at most 3 AST nodes.

use mba_solver::InjectedBug;
use mba_verify::{DiscrepancyKind, FuzzConfig, Fuzzer};

fn fuzz_with_bug(bug: InjectedBug) -> mba_verify::FuzzReport {
    let mut config = FuzzConfig {
        iterations: 200,
        jobs: 2,
        max_discrepancies: 3,
        ..FuzzConfig::default()
    };
    config.simplify.injected_bug = Some(bug);
    Fuzzer::new(config).run()
}

fn assert_caught_and_shrunk(bug: InjectedBug, max_nodes: usize) {
    let report = fuzz_with_bug(bug);
    assert!(
        !report.discrepancies.is_empty(),
        "{bug:?}: fuzzer failed to catch the injected bug"
    );
    for d in &report.discrepancies {
        assert!(
            matches!(d.kind, DiscrepancyKind::Unsound(_)),
            "{bug:?}: expected an unsoundness verdict, got {}",
            d.kind
        );
        assert!(
            d.shrunk.node_count() <= max_nodes,
            "{bug:?}: reproducer `{}` has {} nodes, expected <= {max_nodes}",
            d.shrunk,
            d.shrunk.node_count()
        );
    }
}

#[test]
fn off_by_one_is_caught_and_shrinks_to_one_node() {
    // `e + 1` is wrong on *every* input, so shrinking bottoms out at a
    // single leaf.
    assert_caught_and_shrunk(InjectedBug::OffByOne, 1);
}

#[test]
fn or_to_xor_is_caught_and_shrinks_to_three_nodes() {
    // Wrong exactly when both operands share a set bit: minimal
    // reproducer is a bare `a | b` (or smaller if the simplifier
    // *introduces* an `|`).
    assert_caught_and_shrunk(InjectedBug::OrToXor, 3);
}

#[test]
fn add_to_or_is_caught_and_shrinks_to_three_nodes() {
    // Wrong exactly when the addition carries: minimal reproducer is a
    // bare `a + b`.
    assert_caught_and_shrunk(InjectedBug::AddToOr, 3);
}

#[test]
fn simba_coeff_flip_is_caught_and_shrinks_to_three_nodes() {
    // Zeroes the first recovered basis coefficient inside the SiMBA
    // linear fast path, *after* the probe verification — exactly the
    // failure mode a broken Möbius transform would produce. Wrong on
    // every linear input with a nonzero coefficient, so shrinking
    // bottoms out at a bare variable.
    assert_caught_and_shrunk(InjectedBug::SimbaCoeffFlip, 3);
}

#[test]
fn arena_stale_id_is_caught_and_shrinks_to_three_nodes() {
    // Swaps a freshly-interned id for its first child's inside the
    // arena-keyed pipeline — the observable effect of an intern table
    // returning an entry a rewrite had invalidated. Wrong on any
    // composite whose value differs from its first child's, so shrinking
    // bottoms out at the smallest composite node (e.g. `a + b` or `~a`).
    assert_caught_and_shrunk(InjectedBug::ArenaStaleId, 3);
}

#[test]
fn synth_unsound_accept_is_caught_and_shrinks_to_five_nodes() {
    // Makes the synthesis tier accept on a width-1 truth-table match
    // alone, skipping the probe vector and the probe re-verification —
    // exactly what a signature scheme without full-width probes would
    // do. `x^y` and `x+y` collide at width 1, so the unchecked accept
    // substitutes a non-equivalent "improvement". Shrinking bottoms
    // out at a small arithmetic expression whose width-1 table has a
    // cheaper non-equivalent representative (e.g. `x^z-x`, whose
    // carry-free table collides with `z`-like candidates).
    assert_caught_and_shrunk(InjectedBug::SynthUnsoundAccept, 5);
}

#[test]
fn bdd_complement_flip_is_caught_and_shrunk() {
    // Flips the complement bit on the ROBDD root between build and
    // extraction — the canonical "forgot to normalize the complement
    // edge" bug, which renders the *negation* of every canonicalized
    // subterm. The tier only fires on pure-bitwise skeletons wider
    // than the truth-table cap, so drive the fuzzer on the
    // wide-bitwise stream exclusively. The corruption needs at least
    // 13 live variables to survive the rounds-loop score guard, so
    // the reproducer cannot shrink below a wide chain.
    let mut config = FuzzConfig {
        iterations: 64,
        jobs: 2,
        max_discrepancies: 3,
        ..FuzzConfig::default()
    };
    config.simplify.injected_bug = Some(InjectedBug::BddComplementFlip);
    config.case.wide_bitwise_fraction = 1.0;
    let report = Fuzzer::new(config).run();
    assert!(
        !report.discrepancies.is_empty(),
        "BddComplementFlip: fuzzer failed to catch the injected bug"
    );
    for d in &report.discrepancies {
        assert!(
            matches!(d.kind, DiscrepancyKind::Unsound(_)),
            "BddComplementFlip: expected an unsoundness verdict, got {}",
            d.kind
        );
        assert!(
            d.shrunk.node_count() <= 64,
            "reproducer `{}` has {} nodes, expected <= 64",
            d.shrunk,
            d.shrunk.node_count()
        );
    }
}

#[test]
fn injected_bug_discrepancies_are_deterministic() {
    let a = fuzz_with_bug(InjectedBug::OffByOne);
    let b = fuzz_with_bug(InjectedBug::OffByOne);
    let key = |r: &mba_verify::FuzzReport| {
        r.discrepancies
            .iter()
            .map(|d| (d.iteration, d.shrunk.to_string()))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b));
}

#[test]
fn clean_simplifier_stays_clean_on_the_same_stream() {
    // Control: the identical case stream with no bug injected must be
    // discrepancy-free, so the assertions above measure the bug, not
    // the harness.
    let config = FuzzConfig {
        iterations: 200,
        jobs: 2,
        max_discrepancies: 3,
        ..FuzzConfig::default()
    };
    let report = Fuzzer::new(config).run();
    assert!(
        report.is_clean(),
        "clean control run found: {:?}",
        report.discrepancies
    );
}
