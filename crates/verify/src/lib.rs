//! Differential fuzzing and multi-oracle equivalence verification for
//! the MBA simplifier.
//!
//! The simplifier (`mba-solver`) claims to be *semantic-preserving*:
//! Algorithm 1 may only rewrite an expression into an equivalent one
//! over `Z/2^w`. This crate is the subsystem that earns that claim
//! continuously rather than by review:
//!
//! * [`generate`] — a deterministic case stream mixing structural
//!   random ASTs with obfuscator-built linear / polynomial /
//!   non-polynomial MBA (known ground truth);
//! * [`oracle`] — a tiered equivalence oracle: concrete evaluation at
//!   widths 8–64, exact truth-table comparison for pure-bitwise pairs,
//!   and a budgeted SAT miter through `mba-smt` as the final arbiter;
//! * [`harness`] — the differential fuzzer proper: every case runs
//!   through the cache-on, cache-off, and batch simplify paths, whose
//!   outputs must be byte-identical *and* oracle-equivalent to the
//!   input;
//! * [`shrink`] — greedy minimization of any discrepancy to a
//!   few-node reproducer;
//! * [`corpus`] — the checked-in regression corpus those reproducers
//!   land in, replayed as a normal `cargo test`.
//!
//! The `mba_fuzz` binary drives the harness from the command line and
//! is wired into CI as a smoke job.
//!
//! Everything is deterministic: a run is a pure function of
//! `(seed, config)`, independent of `--jobs`.
//!
//! ```
//! use mba_verify::{FuzzConfig, Fuzzer};
//!
//! let config = FuzzConfig {
//!     iterations: 8,
//!     jobs: 1,
//!     ..FuzzConfig::default()
//! };
//! let report = Fuzzer::new(config).run();
//! assert!(report.is_clean());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod generate;
pub mod harness;
pub mod oracle;
pub mod shrink;

pub use generate::{generate_case, CaseConfig, CaseKind, FuzzCase};
pub use harness::{
    Discrepancy, DiscrepancyKind, FuzzConfig, FuzzReport, Fuzzer, SimplifyPath,
};
pub use oracle::{
    EquivalenceOracle, Mismatch, OracleConfig, OracleStats, OracleTier, Verdict,
    BDD_ORACLE_MAX_VARS,
};
pub use shrink::{shrink, ShrinkStats};
