//! Discrepancy shrinking.
//!
//! A raw fuzz discrepancy is typically a hundred-node obfuscated tree —
//! useless as a bug report. [`shrink`] greedily minimizes it against a
//! caller-supplied *failure predicate* (normally "the harness still
//! flags this expression"), trying in order:
//!
//! 1. **Subtree hoisting** — replace the whole expression by one of its
//!    proper subtrees, smallest first. This is the workhorse: a bug in
//!    one rewrite usually reproduces on the subtree that triggers it.
//! 2. **Operator skeletons** — for every operator appearing in the
//!    tree, try the minimal expression with that shape (`x ⋄ y`, `⋄ x`)
//!    over fresh variables. This jumps straight to 2–3-node
//!    reproducers when the bug is per-operator (e.g. an unsound `|`
//!    rewrite) even if no such literal subtree exists.
//! 3. **Leaf substitution** — replace an inner subtree by one of its
//!    own variables or by the constants `0`, `1`, `-1`.
//! 4. **Constant reduction** — pull every constant toward zero
//!    (halving, and the canonical `0 / 1 / -1`).
//!
//! Each accepted candidate strictly decreases the measure
//! `(node_count, Σ|constant|)`, so the loop terminates; the result is a
//! local minimum — every smaller candidate the strategies can reach
//! passes the predicate.

use mba_expr::{Expr, Ident};
use std::collections::BTreeSet;

/// Counters reported by [`shrink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidates tested against the predicate.
    pub attempts: u64,
    /// Candidates accepted (shrink steps taken).
    pub accepted: u64,
}

/// The shrink measure: lexicographic `(nodes, Σ|constant|)`.
fn measure(e: &Expr) -> (usize, u128) {
    let const_mass: u128 = e
        .subexprs()
        .iter()
        .map(|s| match s {
            Expr::Const(c) => c.unsigned_abs(),
            _ => 0,
        })
        .sum();
    (e.node_count(), const_mass)
}

/// Fresh canonical variable names for operator skeletons. Reusing the
/// generator's names keeps reproducers readable (`x | y`, not `v17 | v93`).
fn skeleton_vars() -> (Expr, Expr) {
    (Expr::Var(Ident::from("x")), Expr::Var(Ident::from("y")))
}

/// All shrink candidates for `e`, deduplicated, smallest measure first.
fn candidates(e: &Expr) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut push = |c: Expr, out: &mut Vec<Expr>| {
        if measure(&c) < measure(e) && seen.insert(c.to_string()) {
            out.push(c);
        }
    };

    // 1. Proper subtrees (postorder already yields children before
    //    parents; the final entry is `e` itself).
    for sub in e.subexprs() {
        if !std::ptr::eq(sub, e) {
            push(sub.clone(), &mut out);
        }
    }

    // 2. Operator skeletons.
    let (x, y) = skeleton_vars();
    for sub in e.subexprs() {
        match sub {
            Expr::Binary(op, ..) => {
                push(Expr::binary(*op, x.clone(), y.clone()), &mut out);
                push(Expr::binary(*op, x.clone(), x.clone()), &mut out);
            }
            Expr::Unary(op, _) => {
                push(Expr::unary(*op, x.clone()), &mut out);
                push(
                    Expr::unary(*op, Expr::binary(mba_expr::BinOp::And, x.clone(), y.clone())),
                    &mut out,
                );
            }
            _ => {}
        }
    }

    // 3. Leaf substitution: rewrite each non-leaf position to a leaf.
    for target in e.subexprs() {
        if target.node_count() <= 1 {
            continue;
        }
        let mut leaves: Vec<Expr> = target
            .vars()
            .into_iter()
            .take(2)
            .map(Expr::Var)
            .collect();
        leaves.extend([Expr::Const(0), Expr::Const(1), Expr::Const(-1)]);
        for leaf in leaves {
            push(replace_subtree(e, target, &leaf), &mut out);
        }
    }

    // 4. Constant reduction.
    for sub in e.subexprs() {
        if let Expr::Const(c) = sub {
            for smaller in [c / 2, 0, 1, -1] {
                if smaller != *c {
                    push(replace_subtree(e, sub, &Expr::Const(smaller)), &mut out);
                }
            }
        }
    }

    out.sort_by_key(measure);
    out
}

/// Replaces every occurrence of `target` (by structural equality)
/// inside `e` with `replacement`.
fn replace_subtree(e: &Expr, target: &Expr, replacement: &Expr) -> Expr {
    if e == target {
        return replacement.clone();
    }
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Unary(op, a) => Expr::unary(*op, replace_subtree(a, target, replacement)),
        Expr::Binary(op, a, b) => Expr::binary(
            *op,
            replace_subtree(a, target, replacement),
            replace_subtree(b, target, replacement),
        ),
    }
}

/// Greedily shrinks `expr` while `fails` keeps returning `true`.
///
/// `fails(expr)` must itself return `true` (the caller should only
/// shrink confirmed discrepancies); the result is the smallest failing
/// expression reachable by the candidate strategies. `max_attempts`
/// bounds total predicate calls — the predicate typically runs the full
/// simplify-plus-oracle stack, so it dominates the cost.
pub fn shrink(
    expr: &Expr,
    max_attempts: u64,
    mut fails: impl FnMut(&Expr) -> bool,
) -> (Expr, ShrinkStats) {
    let mut current = expr.clone();
    let mut stats = ShrinkStats::default();
    'outer: loop {
        for candidate in candidates(&current) {
            if stats.attempts >= max_attempts {
                break 'outer;
            }
            stats.attempts += 1;
            if fails(&candidate) {
                stats.accepted += 1;
                current = candidate;
                continue 'outer;
            }
        }
        break;
    }
    (current, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::BinOp;

    #[test]
    fn shrinks_to_the_triggering_subtree() {
        // Predicate: "contains a multiplication". The minimal failing
        // expression is the bare skeleton x*y (3 nodes).
        let big: Expr = "((a + b) * (c ^ 3)) | (d & ~e)".parse().unwrap();
        let (small, stats) = shrink(&big, 10_000, |e| {
            e.subexprs()
                .iter()
                .any(|s| matches!(s, Expr::Binary(BinOp::Mul, ..)))
        });
        assert!(small.node_count() <= 3, "got `{small}`");
        assert!(stats.accepted > 0);
    }

    #[test]
    fn skeletons_reach_minimal_or_even_without_a_literal_or_subtree() {
        // `|` only appears at the root over big operands, so no proper
        // subtree is a bare `x | y` — the skeleton strategy must fire.
        let big: Expr = "(a*a + 17) | (b ^ (c & 9))".parse().unwrap();
        let (small, _) = shrink(&big, 10_000, |e| {
            e.subexprs()
                .iter()
                .any(|s| matches!(s, Expr::Binary(BinOp::Or, ..)))
        });
        assert_eq!(small.node_count(), 3, "got `{small}`");
    }

    #[test]
    fn constants_shrink_toward_zero() {
        let big: Expr = "x + 4096".parse().unwrap();
        // Predicate: "has any nonzero constant".
        let (small, _) = shrink(&big, 10_000, |e| {
            e.subexprs()
                .iter()
                .any(|s| matches!(s, Expr::Const(c) if *c != 0))
        });
        // The minimal failing expression is a bare constant.
        assert_eq!(small.node_count(), 1);
        assert!(matches!(small, Expr::Const(c) if c != 0));
    }

    #[test]
    fn result_still_fails_the_predicate() {
        let big: Expr = "(x & y) + (x | y) - 3".parse().unwrap();
        let pred = |e: &Expr| e.vars().contains(&Ident::from("x"));
        let (small, _) = shrink(&big, 10_000, pred);
        assert!(pred(&small));
        assert_eq!(small, Expr::Var(Ident::from("x")));
    }

    #[test]
    fn attempt_budget_is_respected() {
        let big: Expr = "((a + b) * (c ^ 3)) | (d & ~e)".parse().unwrap();
        let (_, stats) = shrink(&big, 5, |_| true);
        assert!(stats.attempts <= 5);
    }
}
