//! The tiered equivalence oracle.
//!
//! Deciding `input ≡ output` exactly is the SMT problem the paper is
//! about, so a fuzzing harness cannot afford an exact check on every
//! case. Instead the oracle runs a *tier stack*, cheapest first:
//!
//! 1. **Concrete evaluation** — both expressions are evaluated at
//!    widths 8/16/32/64 over corner valuations (0, ±1, sign bit,
//!    alternating masks, ...) plus seeded random ones. Any difference
//!    is an immediate, witnessed refutation; agreement proves nothing.
//! 2. **Truth tables** — when both sides are pure bitwise over at most
//!    [`mba_sig::TruthTable::MAX_VARS`] variables, their truth tables
//!    are compared. Equal tables are a *proof* of equivalence at every
//!    width (the bitwise semantics is per-bit-slice); a differing row
//!    yields a bit-uniform witness valuation.
//! 3. **BDDs** — pure-bitwise pairs *beyond* the truth-table cap (up
//!    to [`BDD_ORACLE_MAX_VARS`] variables) are built into one shared
//!    ROBDD manager; canonicity makes edge equality an exact proof at
//!    every width, and unequal edges yield a bit-uniform witness from
//!    a satisfying assignment of the XOR diagram. Declines (node
//!    budget) fall through to the miter.
//! 4. **SAT miter** — the final arbiter: a budgeted
//!    [`mba_smt::SmtSolver::check_equivalence_budgeted`] query. `Unsat`
//!    proves equivalence at the miter width; `Sat` yields a model that
//!    is re-evaluated before being trusted (the oracle self-check —
//!    a witness that does not witness is a bug in the oracle itself
//!    and panics rather than poison the verdict stream). A blown
//!    budget downgrades the verdict to [`Verdict::Passed`].
//!
//! Everything is deterministic given the caller's RNG: no wall-clock
//! budget is used unless explicitly configured.

use mba_expr::{EvalProgram, Expr, Ident, Valuation};
use mba_sig::TruthTable;
use mba_smt::{CheckOutcome, MiterBudget, SmtSolver, SolverProfile};
use rand::Rng;

/// Largest variable count the BDD oracle tier attempts. Mirrors the
/// simplifier's BDD-tier cap: between `TruthTable::MAX_VARS + 1` and
/// this, a pure-bitwise pair gets an exact verdict without SAT.
pub const BDD_ORACLE_MAX_VARS: usize = 24;

/// Which oracle tier produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleTier {
    /// Concrete evaluation over corner + random valuations.
    Eval,
    /// Exact truth-table comparison (pure-bitwise expressions only).
    TruthTable,
    /// Exact ROBDD comparison (pure-bitwise pairs beyond the
    /// truth-table variable cap).
    Bdd,
    /// Budgeted SAT miter through `mba-smt`.
    Miter,
}

impl std::fmt::Display for OracleTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            OracleTier::Eval => "eval",
            OracleTier::TruthTable => "truth-table",
            OracleTier::Bdd => "bdd",
            OracleTier::Miter => "miter",
        })
    }
}

/// A witnessed refutation of `lhs ≡ rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Which tier found the witness.
    pub tier: OracleTier,
    /// The width at which the two sides differ.
    pub width: u32,
    /// The witnessing assignment.
    pub valuation: Valuation,
    /// `lhs` under the witness.
    pub lhs_value: u64,
    /// `rhs` under the witness.
    pub rhs_value: u64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self
            .valuation
            .iter()
            .map(|(v, x)| format!("{v}={x}"))
            .collect();
        write!(
            f,
            "[{}] width {}: {{{}}} gives {} vs {}",
            self.tier,
            self.width,
            parts.join(", "),
            self.lhs_value,
            self.rhs_value
        )
    }
}

/// Outcome of one oracle stack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Equivalence *proven* by the named tier (truth table or miter
    /// `Unsat`) at the oracle's width.
    Proved(OracleTier),
    /// No counterexample found, but no proof either (the miter blew
    /// its budget or was skipped by the node limit).
    Passed,
    /// The sides differ on the contained witness.
    Mismatch(Box<Mismatch>),
}

impl Verdict {
    /// Whether this verdict rules the pair equivalent-so-far.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Verdict::Mismatch(_))
    }
}

/// Per-tier counters, accumulated across [`EquivalenceOracle::check`]
/// calls via a caller-owned value (so worker threads can merge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Oracle stack runs.
    pub checks: u64,
    /// Concrete evaluations performed (one per expression pair,
    /// valuation, and width).
    pub evaluations: u64,
    /// Mismatches found by the eval tier.
    pub eval_mismatches: u64,
    /// Truth-table comparisons performed.
    pub truth_tables: u64,
    /// Pairs proven equivalent by truth tables.
    pub truth_table_proofs: u64,
    /// Mismatches found by the truth-table tier.
    pub truth_table_mismatches: u64,
    /// BDD comparisons performed (both sides built successfully).
    pub bdd_checks: u64,
    /// Pairs proven equivalent by BDD edge equality.
    pub bdd_proofs: u64,
    /// Mismatches found by the BDD tier (with validated witnesses).
    pub bdd_mismatches: u64,
    /// SAT miter queries issued.
    pub miters: u64,
    /// Pairs proven equivalent by the miter.
    pub miter_proofs: u64,
    /// Miter proofs closed by word-level rewriting alone.
    pub miter_rewrite_closed: u64,
    /// Mismatches found by the miter (with validated witnesses).
    pub miter_mismatches: u64,
    /// Miter queries that blew their budget (verdict stayed `Passed`).
    pub miter_unknowns: u64,
    /// Miter queries skipped by the node limit.
    pub miter_skipped: u64,
    /// Total SAT conflicts spent in miter queries.
    pub miter_conflicts: u64,
}

impl OracleStats {
    /// Adds `other`'s counters into `self` (worker merge).
    pub fn merge(&mut self, other: &OracleStats) {
        self.checks += other.checks;
        self.evaluations += other.evaluations;
        self.eval_mismatches += other.eval_mismatches;
        self.truth_tables += other.truth_tables;
        self.truth_table_proofs += other.truth_table_proofs;
        self.truth_table_mismatches += other.truth_table_mismatches;
        self.bdd_checks += other.bdd_checks;
        self.bdd_proofs += other.bdd_proofs;
        self.bdd_mismatches += other.bdd_mismatches;
        self.miters += other.miters;
        self.miter_proofs += other.miter_proofs;
        self.miter_rewrite_closed += other.miter_rewrite_closed;
        self.miter_mismatches += other.miter_mismatches;
        self.miter_unknowns += other.miter_unknowns;
        self.miter_skipped += other.miter_skipped;
        self.miter_conflicts += other.miter_conflicts;
    }

    /// Pairs with a definitive proof of equivalence.
    pub fn proofs(&self) -> u64 {
        self.truth_table_proofs + self.bdd_proofs + self.miter_proofs
    }

    /// All mismatches across tiers.
    pub fn mismatches(&self) -> u64 {
        self.eval_mismatches
            + self.truth_table_mismatches
            + self.bdd_mismatches
            + self.miter_mismatches
    }
}

/// Tuning knobs for the oracle stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OracleConfig {
    /// Widths the eval tier exercises.
    pub widths: Vec<u32>,
    /// Random valuations per check, on top of the corner set.
    pub random_valuations: usize,
    /// Width of the SAT miter (the paper's experiments use 8–16 bits;
    /// MBA identities are width-generic, so a narrow proof is strong
    /// evidence and radically cheaper).
    pub miter_width: u32,
    /// Conflict budget per miter query (deterministic).
    pub miter_conflicts: u64,
    /// Skip the miter when `lhs.node_count() + rhs.node_count()`
    /// exceeds this (bit-blasting cost is linear in nodes × width, SAT
    /// cost is worse; the eval tier already covered the pair).
    pub miter_node_limit: usize,
}

impl Default for OracleConfig {
    fn default() -> Self {
        OracleConfig {
            widths: vec![8, 16, 32, 64],
            random_valuations: 8,
            miter_width: 8,
            miter_conflicts: 2_000,
            miter_node_limit: 240,
        }
    }
}

/// Bit patterns MBA bugs like to hide behind: ring identities (0, ±1,
/// ±2), the sign bit, carry-chain saturators, and alternating masks.
const CORNER_VALUES: [u64; 12] = [
    0,
    1,
    2,
    0x7f,
    0x80,
    0xff,
    u64::MAX,
    u64::MAX - 1,
    0x8000_0000_0000_0000,
    0x7fff_ffff_ffff_ffff,
    0xaaaa_aaaa_aaaa_aaaa,
    0x5555_5555_5555_5555,
];

/// The tiered equivalence oracle. One instance is shared by all fuzzer
/// workers (all methods take `&self`).
#[derive(Debug, Clone)]
pub struct EquivalenceOracle {
    config: OracleConfig,
    solver: SmtSolver,
}

impl EquivalenceOracle {
    /// Creates an oracle; the miter uses the Boolector-style profile
    /// (the strongest rewriter, so syntactically equal pairs never
    /// reach the SAT core).
    pub fn new(config: OracleConfig) -> EquivalenceOracle {
        EquivalenceOracle {
            config,
            solver: SmtSolver::new(SolverProfile::boolector_style()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &OracleConfig {
        &self.config
    }

    /// Runs the tier stack on `lhs ≡ rhs`.
    ///
    /// `rng` drives the random valuations of the eval tier — hand in a
    /// per-case seeded RNG and the verdict is a pure function of
    /// `(lhs, rhs, seed)`.
    ///
    /// # Panics
    ///
    /// Panics if the SAT tier returns a model that does *not* witness a
    /// difference on re-evaluation: that means the oracle itself is
    /// broken, and silently continuing would corrupt every downstream
    /// verdict.
    pub fn check(
        &self,
        lhs: &Expr,
        rhs: &Expr,
        rng: &mut impl Rng,
        stats: &mut OracleStats,
    ) -> Verdict {
        stats.checks += 1;

        // Tier 1: concrete evaluation.
        let vars: Vec<Ident> = {
            let mut v = lhs.vars();
            v.extend(rhs.vars());
            v.into_iter().collect()
        };
        if let Some(m) = self.eval_tier(lhs, rhs, &vars, rng, stats) {
            stats.eval_mismatches += 1;
            return Verdict::Mismatch(Box::new(m));
        }

        // Tier 2: truth tables (exact for pure-bitwise pairs).
        if lhs.is_pure_bitwise()
            && rhs.is_pure_bitwise()
            && vars.len() <= TruthTable::MAX_VARS
        {
            if let (Ok(lt), Ok(rt)) = (TruthTable::of(lhs, &vars), TruthTable::of(rhs, &vars)) {
                stats.truth_tables += 1;
                if lt == rt {
                    stats.truth_table_proofs += 1;
                    return Verdict::Proved(OracleTier::TruthTable);
                }
                let m = truth_table_witness(lhs, rhs, &vars, &lt, &rt);
                stats.truth_table_mismatches += 1;
                return Verdict::Mismatch(Box::new(m));
            }
        }

        // Tier 3: exact BDDs for pure-bitwise pairs beyond the
        // truth-table cap. A decline (node budget) falls through to
        // the miter.
        if lhs.is_pure_bitwise()
            && rhs.is_pure_bitwise()
            && vars.len() > TruthTable::MAX_VARS
            && vars.len() <= BDD_ORACLE_MAX_VARS
        {
            if let Some(verdict) = self.bdd_tier(lhs, rhs, &vars, stats) {
                return verdict;
            }
        }

        // Tier 4: the budgeted SAT miter.
        if lhs.node_count() + rhs.node_count() > self.config.miter_node_limit {
            stats.miter_skipped += 1;
            return Verdict::Passed;
        }
        stats.miters += 1;
        let budget = MiterBudget::conflicts(self.config.miter_conflicts);
        let result =
            self.solver
                .check_equivalence_budgeted(lhs, rhs, self.config.miter_width, &budget);
        stats.miter_conflicts += result.sat_stats.conflicts;
        match result.outcome {
            CheckOutcome::Equivalent => {
                stats.miter_proofs += 1;
                if result.solved_by_rewriting {
                    stats.miter_rewrite_closed += 1;
                }
                Verdict::Proved(OracleTier::Miter)
            }
            CheckOutcome::Timeout => {
                stats.miter_unknowns += 1;
                Verdict::Passed
            }
            CheckOutcome::NotEquivalent(cex) => {
                let valuation = cex.to_valuation();
                let width = self.config.miter_width;
                // Strict eval: the model binds every miter variable by
                // construction, so an unbound name here is a bug in the
                // model extraction and must not be read as 0.
                let strict = |e: &Expr| {
                    e.eval_checked(&valuation, width)
                        .unwrap_or_else(|err| panic!("SAT model incomplete for `{e}`: {err}"))
                };
                let (lv, rv) = (strict(lhs), strict(rhs));
                // Oracle self-check: a SAT model that does not witness
                // the difference means the miter (or the model
                // extraction) is wrong. Fail loudly.
                assert_ne!(
                    lv, rv,
                    "SAT oracle returned a bogus witness {cex} for `{lhs}` vs `{rhs}` \
                     at width {width}: both sides evaluate to {lv}"
                );
                stats.miter_mismatches += 1;
                Verdict::Mismatch(Box::new(Mismatch {
                    tier: OracleTier::Miter,
                    width,
                    valuation,
                    lhs_value: lv,
                    rhs_value: rv,
                }))
            }
        }
    }

    /// The BDD tier: builds both sides into one shared manager, where
    /// canonicity makes edge equality exactly semantic equality at
    /// every width. `None` means the tier declined (node budget blown
    /// mid-build or mid-XOR) and the stack should fall through.
    ///
    /// # Panics
    ///
    /// Like the miter tier, panics if the witness extracted from the
    /// XOR diagram does not actually separate the two sides — that is
    /// a bug in the oracle, not in the pair under test.
    fn bdd_tier(
        &self,
        lhs: &Expr,
        rhs: &Expr,
        vars: &[Ident],
        stats: &mut OracleStats,
    ) -> Option<Verdict> {
        let mut mgr = mba_bdd::BddManager::with_node_limit(mba_bdd::DEFAULT_NODE_LIMIT);
        let le = mgr.build(lhs, vars)?;
        let re = mgr.build(rhs, vars)?;
        stats.bdd_checks += 1;
        if le == re {
            stats.bdd_proofs += 1;
            return Some(Verdict::Proved(OracleTier::Bdd));
        }
        let diff = mgr.xor(le, re)?;
        let model = mgr
            .satisfying_valuation(diff, vars)
            .expect("unequal canonical edges must have a separating assignment");
        // Bit-uniform bindings: a separating single-bit assignment
        // separates every bit slice, so width 8 suffices (and matches
        // the truth-table tier's witness convention).
        let valuation: Valuation = model
            .iter()
            .map(|(x, bit)| (x.clone(), if *bit { u64::MAX } else { 0 }))
            .collect();
        let width = 8;
        let strict = |e: &Expr| {
            e.eval_checked(&valuation, width)
                .unwrap_or_else(|err| panic!("BDD witness incomplete for `{e}`: {err}"))
        };
        let (lv, rv) = (strict(lhs), strict(rhs));
        assert_ne!(
            lv, rv,
            "BDD oracle returned a bogus witness for `{lhs}` vs `{rhs}`: \
             both sides evaluate to {lv}"
        );
        stats.bdd_mismatches += 1;
        Some(Verdict::Mismatch(Box::new(Mismatch {
            tier: OracleTier::Bdd,
            width,
            valuation,
            lhs_value: lv,
            rhs_value: rv,
        })))
    }

    /// Runs only the eval tier: a cheap probabilistic refuter.
    ///
    /// `None` means "no difference found", *not* a proof. The harness
    /// uses this for the obfuscator ground-truth cross-check, where the
    /// pair is equivalent by construction and a full miter per case
    /// would double the SAT bill.
    pub fn refute_by_eval(
        &self,
        lhs: &Expr,
        rhs: &Expr,
        rng: &mut impl Rng,
        stats: &mut OracleStats,
    ) -> Option<Mismatch> {
        let vars: Vec<Ident> = {
            let mut v = lhs.vars();
            v.extend(rhs.vars());
            v.into_iter().collect()
        };
        self.eval_tier(lhs, rhs, &vars, rng, stats)
    }

    /// Tier 1: corner + random valuations across all configured widths,
    /// on the batch evaluation engine.
    ///
    /// Both sides are compiled once to [`EvalProgram`] tapes; each
    /// valuation group (corners, then randoms) is evaluated as one SoA
    /// batch per width instead of one tree walk per point. Variable
    /// binding is *strict* — `vars` must cover both expressions, or an
    /// unbound variable would read 0 on both sides and let inequivalent
    /// expressions agree on every sample.
    ///
    /// The witness, when one exists, is the same the scalar loop found:
    /// lanes are scanned in valuation order with widths innermost, so
    /// the first differing `(valuation, width)` pair wins. The random
    /// group is only drawn (and `rng` only advanced) when the corner
    /// group found no difference, preserving the corner-mismatch RNG
    /// stream of the scalar implementation.
    ///
    /// # Panics
    ///
    /// Panics when `vars` does not bind every variable of `lhs` or
    /// `rhs` — a broken caller the oracle must not paper over.
    fn eval_tier(
        &self,
        lhs: &Expr,
        rhs: &Expr,
        vars: &[Ident],
        rng: &mut impl Rng,
        stats: &mut OracleStats,
    ) -> Option<Mismatch> {
        let lp = EvalProgram::compile(lhs);
        let rp = EvalProgram::compile(rhs);

        // Uniform corners: every variable gets the same pattern (the
        // regime where cancellation identities fire) ...
        let mut corners: Vec<Valuation> = CORNER_VALUES
            .iter()
            .map(|&c| vars.iter().map(|x| (x.clone(), c)).collect())
            .collect();
        // ... and rotated corners: adjacent variables get different
        // patterns (the regime where carries and sign bits interact).
        corners.extend((0..CORNER_VALUES.len()).map(|k| {
            vars.iter()
                .enumerate()
                .map(|(j, x)| (x.clone(), CORNER_VALUES[(k + j) % CORNER_VALUES.len()]))
                .collect::<Valuation>()
        }));
        if let Some(m) = self.compare_batch(&lp, &rp, &corners, stats) {
            return Some(m);
        }

        let randoms: Vec<Valuation> = (0..self.config.random_valuations)
            .map(|_| vars.iter().map(|x| (x.clone(), rng.gen())).collect())
            .collect();
        self.compare_batch(&lp, &rp, &randoms, stats)
    }

    /// Evaluates one valuation group on both tapes at every configured
    /// width and returns the first mismatch in `(valuation, width)`
    /// order.
    fn compare_batch(
        &self,
        lp: &EvalProgram,
        rp: &EvalProgram,
        valuations: &[Valuation],
        stats: &mut OracleStats,
    ) -> Option<Mismatch> {
        if valuations.is_empty() || self.config.widths.is_empty() {
            return None;
        }
        let strict = |r: Result<Vec<Vec<u64>>, mba_expr::UnboundVariableError>| {
            r.unwrap_or_else(|e| panic!("oracle valuation does not cover both expressions: {e}"))
        };
        let lcols = strict(lp.bind(valuations));
        let rcols = strict(rp.bind(valuations));
        let per_width: Vec<(u32, Vec<u64>, Vec<u64>)> = self
            .config
            .widths
            .iter()
            .map(|&width| {
                stats.evaluations += valuations.len() as u64;
                (
                    width,
                    lp.eval_batch(valuations.len(), &lcols, width),
                    rp.eval_batch(valuations.len(), &rcols, width),
                )
            })
            .collect();
        for (lane, valuation) in valuations.iter().enumerate() {
            for (width, lv, rv) in &per_width {
                if lv[lane] != rv[lane] {
                    return Some(Mismatch {
                        tier: OracleTier::Eval,
                        width: *width,
                        valuation: valuation.clone(),
                        lhs_value: lv[lane],
                        rhs_value: rv[lane],
                    });
                }
            }
        }
        None
    }
}

/// Builds the witness valuation for a truth-table difference: bit `j`
/// of the differing row index maps variable `j` (MSB-first, matching
/// [`TruthTable`]'s row convention) to all-zeros or all-ones.
fn truth_table_witness(
    lhs: &Expr,
    rhs: &Expr,
    vars: &[Ident],
    lt: &TruthTable,
    rt: &TruthTable,
) -> Mismatch {
    let t = vars.len();
    let (lrows, rrows) = (lt.rows(), rt.rows());
    let row = (0..1usize << t)
        .find(|&r| lrows[r] != rrows[r])
        .expect("tables differ in some row");
    let valuation: Valuation = vars
        .iter()
        .enumerate()
        .map(|(j, x)| {
            let bit = (row >> (t - 1 - j)) & 1 == 1;
            (x.clone(), if bit { u64::MAX } else { 0 })
        })
        .collect();
    let width = 8;
    // Strict eval: `vars` is the variable union of both sides, so an
    // unbound name means the caller passed the wrong variable set.
    let strict = |e: &Expr| {
        e.eval_checked(&valuation, width)
            .unwrap_or_else(|err| panic!("truth-table witness incomplete for `{e}`: {err}"))
    };
    let (lv, rv) = (strict(lhs), strict(rhs));
    debug_assert_ne!(lv, rv, "truth-table witness must reproduce");
    Mismatch {
        tier: OracleTier::TruthTable,
        width,
        valuation,
        lhs_value: lv,
        rhs_value: rv,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn oracle() -> EquivalenceOracle {
        EquivalenceOracle::new(OracleConfig::default())
    }

    fn check(lhs: &str, rhs: &str) -> (Verdict, OracleStats) {
        let mut stats = OracleStats::default();
        let v = oracle().check(
            &lhs.parse().unwrap(),
            &rhs.parse().unwrap(),
            &mut StdRng::seed_from_u64(1),
            &mut stats,
        );
        (v, stats)
    }

    #[test]
    fn eval_tier_catches_obvious_differences() {
        let (v, stats) = check("x + y", "x + y + 1");
        let Verdict::Mismatch(m) = v else {
            panic!("expected mismatch");
        };
        assert_eq!(m.tier, OracleTier::Eval);
        assert_ne!(m.lhs_value, m.rhs_value);
        assert_eq!(stats.eval_mismatches, 1);
        assert_eq!(stats.miters, 0, "no SAT needed for an eval refutation");
    }

    #[test]
    fn truth_tables_prove_bitwise_pairs_without_sat() {
        let (v, stats) = check("~(x & y)", "~x | ~y");
        assert_eq!(v, Verdict::Proved(OracleTier::TruthTable));
        assert_eq!(stats.truth_table_proofs, 1);
        assert_eq!(stats.miters, 0);
    }

    #[test]
    fn truth_table_mismatch_carries_a_real_witness() {
        // An empty width list disables the eval tier, forcing the
        // truth-table tier to construct the witness itself.
        let oracle = EquivalenceOracle::new(OracleConfig {
            widths: vec![],
            random_valuations: 0,
            ..OracleConfig::default()
        });
        let mut stats = OracleStats::default();
        let v = oracle.check(
            &"x & y".parse().unwrap(),
            &"x | y".parse().unwrap(),
            &mut StdRng::seed_from_u64(2),
            &mut stats,
        );
        let Verdict::Mismatch(m) = v else {
            panic!("expected mismatch");
        };
        assert_eq!(m.tier, OracleTier::TruthTable);
        assert_ne!(m.lhs_value, m.rhs_value);
        assert_eq!(stats.truth_table_mismatches, 1);
    }

    #[test]
    fn bdd_tier_proves_wide_bitwise_pairs_without_sat() {
        // 13 variables: beyond the truth-table cap, in BDD range.
        let lhs = "~(a&b&c&d&e&f&g&h&i&j&k&l&m)";
        let rhs = "~a|~b|~c|~d|~e|~f|~g|~h|~i|~j|~k|~l|~m";
        let (v, stats) = check(lhs, rhs);
        assert_eq!(v, Verdict::Proved(OracleTier::Bdd));
        assert_eq!(stats.bdd_proofs, 1);
        assert_eq!(stats.truth_tables, 0, "truth tables cannot reach t=13");
        assert_eq!(stats.miters, 0, "no SAT needed for a BDD proof");
    }

    #[test]
    fn bdd_tier_mismatch_carries_a_real_witness() {
        // Disable the eval tier so the BDD tier must construct the
        // witness itself (mirrors the truth-table witness test).
        let oracle = EquivalenceOracle::new(OracleConfig {
            widths: vec![],
            random_valuations: 0,
            ..OracleConfig::default()
        });
        let mut stats = OracleStats::default();
        let v = oracle.check(
            &"a&b&c&d&e&f&g&h&i&j&k&l&m".parse().unwrap(),
            &"a|b|c|d|e|f|g|h|i|j|k|l|m".parse().unwrap(),
            &mut StdRng::seed_from_u64(5),
            &mut stats,
        );
        let Verdict::Mismatch(m) = v else {
            panic!("expected mismatch");
        };
        assert_eq!(m.tier, OracleTier::Bdd);
        assert_ne!(m.lhs_value, m.rhs_value);
        assert_eq!(stats.bdd_mismatches, 1);
        assert_eq!(stats.miters, 0);
    }

    #[test]
    fn miter_proves_mixed_identities() {
        let (v, stats) = check("x + y", "(x | y) + (x & y)");
        assert_eq!(v, Verdict::Proved(OracleTier::Miter));
        assert_eq!(stats.miter_proofs, 1);
    }

    #[test]
    fn miter_witnesses_are_validated() {
        // A subtle difference corner valuations miss at some widths:
        // x*y vs x*y + 256 differ only at widths > 8... at width 8 the
        // miter sees them as equal, but eval at width 16 catches it.
        let (v, _) = check("x * y", "x * y + 256");
        assert!(matches!(v, Verdict::Mismatch(_)));
    }

    #[test]
    fn budget_exhaustion_degrades_to_passed_not_wrong() {
        let oracle = EquivalenceOracle::new(OracleConfig {
            miter_conflicts: 1,
            ..OracleConfig::default()
        });
        let mut stats = OracleStats::default();
        // The Figure 1 identity is UNSAT but far beyond one conflict.
        let v = oracle.check(
            &"x*y".parse().unwrap(),
            &"(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap(),
            &mut StdRng::seed_from_u64(3),
            &mut stats,
        );
        assert_eq!(v, Verdict::Passed);
        assert_eq!(stats.miter_unknowns, 1);
    }

    #[test]
    fn node_limit_skips_the_miter() {
        let oracle = EquivalenceOracle::new(OracleConfig {
            miter_node_limit: 1,
            ..OracleConfig::default()
        });
        let mut stats = OracleStats::default();
        let v = oracle.check(
            &"x + y".parse().unwrap(),
            &"(x ^ y) + 2*(x & y)".parse().unwrap(),
            &mut StdRng::seed_from_u64(4),
            &mut stats,
        );
        assert_eq!(v, Verdict::Passed);
        assert_eq!(stats.miter_skipped, 1);
        assert_eq!(stats.miters, 0);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let (_, a) = check("x", "x");
        let (_, b) = check("x & y", "y & x");
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.checks, 2);
        assert_eq!(merged.proofs(), a.proofs() + b.proofs());
    }

    #[test]
    #[should_panic(expected = "unbound variable")]
    fn eval_tier_rejects_mismatched_variable_sets() {
        // Before eval went strict, a variable missing from `vars` read
        // as 0 on both sides, so `x + y` vs `x` *agreed* on every
        // sample and the refuter silently lost its power. It must blow
        // up instead.
        let o = oracle();
        let mut stats = OracleStats::default();
        o.eval_tier(
            &"x + y".parse().unwrap(),
            &"x".parse().unwrap(),
            &[Ident::new("x")],
            &mut StdRng::seed_from_u64(7),
            &mut stats,
        );
    }

    #[test]
    fn deterministic_verdicts_per_seed() {
        let o = oracle();
        let lhs: Expr = "x*y + z".parse().unwrap();
        let rhs: Expr = "z + x*y".parse().unwrap();
        let mut s1 = OracleStats::default();
        let mut s2 = OracleStats::default();
        let v1 = o.check(&lhs, &rhs, &mut StdRng::seed_from_u64(9), &mut s1);
        let v2 = o.check(&lhs, &rhs, &mut StdRng::seed_from_u64(9), &mut s2);
        assert_eq!(v1, v2);
        assert_eq!(s1, s2);
    }
}
