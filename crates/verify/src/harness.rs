//! The differential fuzzing harness.
//!
//! Each iteration generates one case (a pure function of
//! `(seed, index)`), runs it through the simplifier's entry points —
//! the shared cache-on path, a cache-off path, the batch path, and
//! (when no bug is injected) a fast-path-off path, an arena-off path,
//! a synthesis-off path, and a BDD-off path — and then interrogates
//! the results:
//!
//! * all outputs must be **byte-identical** (the PR-1 invariant:
//!   caching, scheduling, the simba fast path, and the hash-consed
//!   arena are not allowed to change results),
//! * the output must be **equivalent to the input** per the tiered
//!   [`EquivalenceOracle`],
//! * for obfuscator cases the output must also agree with the known
//!   **ground truth** by evaluation.
//!
//! Any violation is a [`Discrepancy`]; the harness immediately
//! [`shrink`]s it to a minimal reproducer before reporting.
//!
//! Iterations are processed in chunks: the batch-path simplification
//! of a chunk *is* the PR-1 worker pool (`simplify_batch_with_jobs`),
//! and per-case verification fans out over the same work-stealing
//! atomic-index pool. Because cases and oracle RNG streams derive from
//! `(seed, index)` alone, the verdict stream is independent of `--jobs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mba_expr::Expr;
use mba_obs::MetricsRegistry;
use mba_sig::SigCache;
use mba_solver::{Simplifier, SimplifyConfig};
use rand::rngs::StdRng;

use crate::generate::{case_rng, generate_case, CaseConfig, CaseKind, FuzzCase};
use crate::oracle::{EquivalenceOracle, Mismatch, OracleConfig, OracleStats, Verdict};
use crate::shrink::{shrink, ShrinkStats};

/// Which simplifier entry point produced an output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimplifyPath {
    /// Shared `Simplifier` with the lookup table enabled.
    Cached,
    /// Fresh configuration with `use_cache: false`.
    Uncached,
    /// `simplify_batch_with_jobs` over the whole chunk.
    Batch,
    /// Configuration with `use_simba: false` — the truth-table route,
    /// pinning the fast path's byte-identity contract.
    NoSimba,
    /// Configuration with `use_arena: false` — the tree-walking route,
    /// pinning the hash-consed arena's byte-identity contract.
    NoArena,
    /// Configuration with `use_synthesis: false` — pinning the
    /// synthesis tier's contract that a *rejection* is byte-invisible
    /// (the comparison is skipped when the cached result's tier is
    /// `Synthesis`, where divergence is the point).
    NoSynth,
    /// Configuration with `use_bdd: false` — pinning the BDD
    /// canonicalization tier's contract that results it never touched
    /// are byte-identical (the comparison is skipped when the cached
    /// result reports `used_bdd`, where divergence is the point).
    NoBdd,
}

impl std::fmt::Display for SimplifyPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SimplifyPath::Cached => "cached",
            SimplifyPath::Uncached => "uncached",
            SimplifyPath::Batch => "batch",
            SimplifyPath::NoSimba => "nosimba",
            SimplifyPath::NoArena => "noarena",
            SimplifyPath::NoSynth => "nosynth",
            SimplifyPath::NoBdd => "nobdd",
        })
    }
}

/// What kind of invariant a discrepancy violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiscrepancyKind {
    /// The simplifier changed semantics: `input ≢ output`.
    Unsound(Mismatch),
    /// Two simplify paths produced different trees for the same input.
    PathDivergence {
        /// First differing path.
        left: SimplifyPath,
        /// Second differing path.
        right: SimplifyPath,
    },
    /// An obfuscator case disagrees with its own ground truth — the
    /// *generator* is unsound, not the simplifier.
    GeneratorUnsound(Mismatch),
}

impl std::fmt::Display for DiscrepancyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscrepancyKind::Unsound(m) => write!(f, "unsound: {m}"),
            DiscrepancyKind::PathDivergence { left, right } => {
                write!(f, "path divergence: {left} vs {right}")
            }
            DiscrepancyKind::GeneratorUnsound(m) => write!(f, "generator unsound: {m}"),
        }
    }
}

/// One confirmed, shrunk fuzzing failure.
#[derive(Debug, Clone)]
pub struct Discrepancy {
    /// Iteration index (replay with the same seed to regenerate).
    pub iteration: u64,
    /// How the failing case was constructed.
    pub case_kind: CaseKind,
    /// The original failing input.
    pub input: Expr,
    /// The simplifier's output for the original input (cached path).
    pub output: Expr,
    /// Which invariant broke.
    pub kind: DiscrepancyKind,
    /// The minimal reproducer (still fails the same predicate).
    pub shrunk: Expr,
    /// Shrinking effort counters.
    pub shrink_stats: ShrinkStats,
}

/// Fuzzer configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Root seed; the whole run is a pure function of it.
    pub seed: u64,
    /// Iterations to run (may stop early on time budget or
    /// `max_discrepancies`).
    pub iterations: u64,
    /// Worker threads (0 = available parallelism).
    pub jobs: usize,
    /// Optional wall-clock budget, checked at chunk boundaries.
    pub time_budget: Option<Duration>,
    /// Iterations per batch-simplify chunk.
    pub chunk_size: usize,
    /// Case generation settings.
    pub case: CaseConfig,
    /// Oracle settings.
    pub oracle: OracleConfig,
    /// Simplifier settings (self-tests plant an
    /// [`mba_solver::InjectedBug`] here).
    pub simplify: SimplifyConfig,
    /// Stop after this many discrepancies.
    pub max_discrepancies: usize,
    /// Predicate-call budget per shrink.
    pub shrink_attempts: u64,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iterations: 1_000,
            jobs: 0,
            time_budget: None,
            chunk_size: 64,
            case: CaseConfig::default(),
            oracle: OracleConfig::default(),
            simplify: SimplifyConfig::default(),
            max_discrepancies: 8,
            shrink_attempts: 2_000,
        }
    }
}

/// Aggregate results of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// The seed the run used.
    pub seed: u64,
    /// Iterations actually executed.
    pub iterations: u64,
    /// Wall-clock time of the run.
    pub wall_time: Duration,
    /// Cases per generation category, `(kind, count)` sorted by kind.
    pub per_kind: Vec<(CaseKind, u64)>,
    /// Oracle tier counters, merged across workers.
    pub oracle: OracleStats,
    /// Total AST nodes across all inputs.
    pub input_nodes: u64,
    /// Total AST nodes across all (cached-path) outputs.
    pub output_nodes: u64,
    /// All confirmed discrepancies, shrunk and sorted by iteration.
    pub discrepancies: Vec<Discrepancy>,
    /// Total shrinking effort.
    pub shrink: ShrinkStats,
    /// Whether the run stopped before `iterations` (time budget or
    /// discrepancy cap).
    pub stopped_early: bool,
}

impl FuzzReport {
    /// True when the run found nothing wrong.
    pub fn is_clean(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// Outcome of checking a single case (pre-shrink).
struct CaseOutcome {
    index: u64,
    kind: CaseKind,
    input_nodes: u64,
    output_nodes: u64,
    failure: Option<(FuzzCase, Expr, DiscrepancyKind)>,
}

/// The differential fuzzer. Construct with a [`FuzzConfig`], then
/// [`Fuzzer::run`].
pub struct Fuzzer {
    config: FuzzConfig,
    oracle: EquivalenceOracle,
    cached: Simplifier,
    uncached: Simplifier,
    nosimba: Simplifier,
    noarena: Simplifier,
    nosynth: Simplifier,
    nobdd: Simplifier,
}

/// Salt separating the oracle's RNG stream from the generator's, so
/// random valuations are not correlated with the case they check.
const ORACLE_SALT: u64 = 0x6f72_6163_6c65_5f31;

impl Fuzzer {
    /// Builds a fuzzer; the cached/uncached simplifier pair and the
    /// oracle are shared by all workers. Both simplifiers record their
    /// stage spans into one registry ([`Fuzzer::metrics`]), so the
    /// fuzz run's stage breakdown covers both paths combined.
    pub fn new(config: FuzzConfig) -> Fuzzer {
        let obs = Arc::new(MetricsRegistry::new());
        let cached = Simplifier::with_metrics(
            SimplifyConfig {
                use_cache: true,
                ..config.simplify.clone()
            },
            Arc::new(SigCache::new()),
            Arc::clone(&obs),
        );
        let uncached = Simplifier::with_metrics(
            SimplifyConfig {
                use_cache: false,
                ..config.simplify.clone()
            },
            Arc::new(SigCache::new()),
            Arc::clone(&obs),
        );
        let nosimba = Simplifier::with_metrics(
            SimplifyConfig {
                use_simba: false,
                use_cache: true,
                ..config.simplify.clone()
            },
            Arc::new(SigCache::new()),
            Arc::clone(&obs),
        );
        let noarena = Simplifier::with_metrics(
            SimplifyConfig {
                use_arena: false,
                use_cache: true,
                ..config.simplify.clone()
            },
            Arc::new(SigCache::new()),
            Arc::clone(&obs),
        );
        let nosynth = Simplifier::with_metrics(
            SimplifyConfig {
                use_synthesis: false,
                use_cache: true,
                ..config.simplify.clone()
            },
            Arc::new(SigCache::new()),
            Arc::clone(&obs),
        );
        let nobdd = Simplifier::with_metrics(
            SimplifyConfig {
                use_bdd: false,
                use_cache: true,
                ..config.simplify.clone()
            },
            Arc::new(SigCache::new()),
            Arc::clone(&obs),
        );
        let oracle = EquivalenceOracle::new(config.oracle.clone());
        Fuzzer {
            config,
            oracle,
            cached,
            uncached,
            nosimba,
            noarena,
            nosynth,
            nobdd,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FuzzConfig {
        &self.config
    }

    /// The registry shared by both simplification paths; snapshot it
    /// after [`Fuzzer::run`] for the per-stage timing breakdown.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.cached.metrics()
    }

    /// Runs the configured number of iterations and reports.
    pub fn run(&self) -> FuzzReport {
        let start = Instant::now();
        let jobs = if self.config.jobs == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.config.jobs
        };
        let mut report = FuzzReport {
            seed: self.config.seed,
            ..FuzzReport::default()
        };
        let mut per_kind: std::collections::BTreeMap<CaseKind, u64> = Default::default();

        let chunk = self.config.chunk_size.max(1) as u64;
        let mut next_iteration = 0u64;
        while next_iteration < self.config.iterations {
            if let Some(budget) = self.config.time_budget {
                if start.elapsed() >= budget {
                    report.stopped_early = true;
                    break;
                }
            }
            if report.discrepancies.len() >= self.config.max_discrepancies {
                report.stopped_early = true;
                break;
            }
            let end = (next_iteration + chunk).min(self.config.iterations);
            let outcomes = self.run_chunk(next_iteration, end, jobs, &mut report.oracle);
            for outcome in outcomes {
                report.iterations += 1;
                *per_kind.entry(outcome.kind).or_default() += 1;
                report.input_nodes += outcome.input_nodes;
                report.output_nodes += outcome.output_nodes;
                if let Some((case, output, kind)) = outcome.failure {
                    if report.discrepancies.len() < self.config.max_discrepancies {
                        let d = self.shrink_discrepancy(case, output, kind);
                        report.shrink.attempts += d.shrink_stats.attempts;
                        report.shrink.accepted += d.shrink_stats.accepted;
                        report.discrepancies.push(d);
                    }
                }
            }
            next_iteration = end;
        }
        report.per_kind = per_kind.into_iter().collect();
        report.wall_time = start.elapsed();
        report
    }

    /// Generates, batch-simplifies, and verifies iterations
    /// `[start, end)` with `jobs` workers.
    fn run_chunk(
        &self,
        start: u64,
        end: u64,
        jobs: usize,
        oracle_stats: &mut OracleStats,
    ) -> Vec<CaseOutcome> {
        let cases: Vec<FuzzCase> = (start..end)
            .map(|i| generate_case(self.config.seed, i, &self.config.case))
            .collect();
        // Borrowed job setup: the batch entry point takes `&[&Expr]`, so
        // no deep clone of the chunk's expressions is paid just to
        // assemble the job list.
        let exprs: Vec<&Expr> = cases.iter().map(|c| &c.expr).collect();

        // The batch path doubles as the worker pool under test.
        let batch_results = self.cached.simplify_batch_refs(&exprs, jobs);

        // Per-case verification over the same work-stealing shape.
        let next = AtomicUsize::new(0);
        let mut tagged: Vec<(OracleStats, Vec<CaseOutcome>)> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..jobs.clamp(1, cases.len().max(1)))
                .map(|_| {
                    scope.spawn(|| {
                        let mut stats = OracleStats::default();
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(case) = cases.get(i) else { break };
                            local.push(self.check_case(
                                case,
                                &batch_results[i].output,
                                &mut stats,
                            ));
                        }
                        (stats, local)
                    })
                })
                .collect();
            workers
                .into_iter()
                .map(|w| w.join().expect("verify worker panicked"))
                .collect()
        });
        let mut outcomes = Vec::with_capacity(cases.len());
        for (stats, local) in tagged.drain(..) {
            oracle_stats.merge(&stats);
            outcomes.extend(local);
        }
        outcomes.sort_by_key(|o| o.index);
        outcomes
    }

    /// Runs the full invariant stack on one case.
    fn check_case(
        &self,
        case: &FuzzCase,
        batch_output: &Expr,
        stats: &mut OracleStats,
    ) -> CaseOutcome {
        let cached = self.cached.simplify_detailed(&case.expr);
        let (cached_out, cached_tier, cached_used_bdd) =
            (cached.output, cached.tier, cached.used_bdd);
        let uncached_out = self.uncached.simplify_detailed(&case.expr).output;
        let mut rng = self.oracle_rng(case.index);

        let failure = if cached_out != *batch_output {
            Some((
                case.clone(),
                cached_out.clone(),
                DiscrepancyKind::PathDivergence {
                    left: SimplifyPath::Cached,
                    right: SimplifyPath::Batch,
                },
            ))
        } else if cached_out != uncached_out {
            Some((
                case.clone(),
                cached_out.clone(),
                DiscrepancyKind::PathDivergence {
                    left: SimplifyPath::Cached,
                    right: SimplifyPath::Uncached,
                },
            ))
        } else if self.check_nosimba()
            && cached_out != self.nosimba.simplify_detailed(&case.expr).output
        {
            Some((
                case.clone(),
                cached_out.clone(),
                DiscrepancyKind::PathDivergence {
                    left: SimplifyPath::Cached,
                    right: SimplifyPath::NoSimba,
                },
            ))
        } else if self.check_noarena()
            && cached_out != self.noarena.simplify_detailed(&case.expr).output
        {
            Some((
                case.clone(),
                cached_out.clone(),
                DiscrepancyKind::PathDivergence {
                    left: SimplifyPath::Cached,
                    right: SimplifyPath::NoArena,
                },
            ))
        } else if self.check_nosynth()
            && cached_tier != mba_solver::SimplifyTier::Synthesis
            && cached_out != self.nosynth.simplify_detailed(&case.expr).output
        {
            Some((
                case.clone(),
                cached_out.clone(),
                DiscrepancyKind::PathDivergence {
                    left: SimplifyPath::Cached,
                    right: SimplifyPath::NoSynth,
                },
            ))
        } else if self.check_nobdd()
            && !cached_used_bdd
            && cached_out != self.nobdd.simplify_detailed(&case.expr).output
        {
            Some((
                case.clone(),
                cached_out.clone(),
                DiscrepancyKind::PathDivergence {
                    left: SimplifyPath::Cached,
                    right: SimplifyPath::NoBdd,
                },
            ))
        } else {
            match self.oracle.check(&case.expr, &cached_out, &mut rng, stats) {
                Verdict::Mismatch(m) => Some((
                    case.clone(),
                    cached_out.clone(),
                    DiscrepancyKind::Unsound(*m),
                )),
                Verdict::Proved(_) | Verdict::Passed => {
                    // Ground-truth cross-check for obfuscator cases.
                    case.target.as_ref().and_then(|target| {
                        self.oracle
                            .refute_by_eval(&cached_out, target, &mut rng, stats)
                            .map(|m| {
                                // Decide who lies: if the *input* already
                                // disagrees with the target, the generator
                                // broke its own contract.
                                let kind = match self.oracle.refute_by_eval(
                                    &case.expr,
                                    target,
                                    &mut rng,
                                    stats,
                                ) {
                                    Some(gm) => DiscrepancyKind::GeneratorUnsound(gm),
                                    None => DiscrepancyKind::Unsound(m),
                                };
                                (case.clone(), cached_out.clone(), kind)
                            })
                    })
                }
            }
        };

        CaseOutcome {
            index: case.index,
            kind: case.kind,
            input_nodes: case.expr.node_count() as u64,
            output_nodes: cached_out.node_count() as u64,
            failure,
        }
    }

    /// Whether the fast-path-off comparison runs. Injected bugs that
    /// live *inside* the fast path (e.g. `SimbaCoeffFlip`) corrupt only
    /// the simba route by design; comparing against the truth-table
    /// route would misattribute them as path divergence before the
    /// oracle can issue the correct unsoundness verdict.
    fn check_nosimba(&self) -> bool {
        self.config.simplify.injected_bug.is_none() && self.config.simplify.use_simba
    }

    /// Whether the arena-off comparison runs. Same reasoning as
    /// [`Fuzzer::check_nosimba`]: `ArenaStaleId` corrupts only the
    /// arena route by design, and the oracle — not the differential
    /// layer — must attribute it as unsoundness.
    fn check_noarena(&self) -> bool {
        self.config.simplify.injected_bug.is_none() && self.config.simplify.use_arena
    }

    /// Whether the synthesis-off comparison runs. Same reasoning as
    /// [`Fuzzer::check_nosimba`]: `SynthUnsoundAccept` corrupts only
    /// the synthesis route by design. The caller additionally skips
    /// the comparison when the cached tier is `Synthesis` — an
    /// *accepted* synthesis is supposed to differ from the
    /// synthesis-off output (and is held to the equivalence oracle
    /// instead); only a *rejection* must be byte-invisible.
    fn check_nosynth(&self) -> bool {
        self.config.simplify.injected_bug.is_none() && self.config.simplify.use_synthesis
    }

    /// Whether the BDD-off comparison runs. Same reasoning as
    /// [`Fuzzer::check_nosimba`]: `BddComplementFlip` corrupts only
    /// the BDD route by design. The caller additionally skips the
    /// comparison when the cached result reports `used_bdd` — a fired
    /// canonicalization is *supposed* to differ from the BDD-off
    /// output (and is held to the equivalence oracle instead); only an
    /// untouched result must be byte-invisible.
    fn check_nobdd(&self) -> bool {
        self.config.simplify.injected_bug.is_none() && self.config.simplify.use_bdd
    }

    /// Per-case oracle RNG, decorrelated from the generator stream.
    fn oracle_rng(&self, index: u64) -> StdRng {
        case_rng(self.config.seed ^ ORACLE_SALT, index)
    }

    /// Shrinks a raw failure to a minimal reproducer.
    fn shrink_discrepancy(
        &self,
        case: FuzzCase,
        output: Expr,
        kind: DiscrepancyKind,
    ) -> Discrepancy {
        let index = case.index;
        let predicate: Box<dyn FnMut(&Expr) -> bool + '_> = match &kind {
            DiscrepancyKind::Unsound(_) => {
                let oracle = &self.oracle;
                let uncached = &self.uncached;
                Box::new(move |e: &Expr| {
                    let out = uncached.simplify_detailed(e).output;
                    let mut rng = case_rng(index ^ ORACLE_SALT, 0);
                    let mut scratch = OracleStats::default();
                    !oracle.check(e, &out, &mut rng, &mut scratch).is_ok()
                })
            }
            DiscrepancyKind::PathDivergence { .. } => {
                let uncached = &self.uncached;
                let simplify = self.config.simplify.clone();
                let with_nosimba = self.check_nosimba();
                let with_noarena = self.check_noarena();
                let with_nosynth = self.check_nosynth();
                let with_nobdd = self.check_nobdd();
                Box::new(move |e: &Expr| {
                    // Fresh cache-on instance per probe so stale cache
                    // state cannot mask (or fake) the divergence.
                    let fresh = Simplifier::with_config(SimplifyConfig {
                        use_cache: true,
                        ..simplify.clone()
                    });
                    let detailed = fresh.simplify_detailed(e);
                    let a = detailed.output;
                    let b = uncached.simplify_detailed(e).output;
                    let c = fresh
                        .simplify_batch_with_jobs(std::slice::from_ref(e), 2)
                        .remove(0)
                        .output;
                    if a != b || a != c {
                        return true;
                    }
                    if with_nosimba {
                        let nosimba = Simplifier::with_config(SimplifyConfig {
                            use_simba: false,
                            use_cache: true,
                            ..simplify.clone()
                        });
                        if nosimba.simplify_detailed(e).output != a {
                            return true;
                        }
                    }
                    if with_noarena {
                        let noarena = Simplifier::with_config(SimplifyConfig {
                            use_arena: false,
                            use_cache: true,
                            ..simplify.clone()
                        });
                        if noarena.simplify_detailed(e).output != a {
                            return true;
                        }
                    }
                    if with_nosynth && detailed.tier != mba_solver::SimplifyTier::Synthesis {
                        let nosynth = Simplifier::with_config(SimplifyConfig {
                            use_synthesis: false,
                            use_cache: true,
                            ..simplify.clone()
                        });
                        if nosynth.simplify_detailed(e).output != a {
                            return true;
                        }
                    }
                    with_nobdd && !detailed.used_bdd && {
                        let nobdd = Simplifier::with_config(SimplifyConfig {
                            use_bdd: false,
                            use_cache: true,
                            ..simplify.clone()
                        });
                        nobdd.simplify_detailed(e).output != a
                    }
                })
            }
            DiscrepancyKind::GeneratorUnsound(_) => {
                let oracle = &self.oracle;
                let target = case.target.clone().unwrap_or(Expr::Const(0));
                Box::new(move |e: &Expr| {
                    let mut rng = case_rng(index ^ ORACLE_SALT, 1);
                    let mut scratch = OracleStats::default();
                    oracle
                        .refute_by_eval(e, &target, &mut rng, &mut scratch)
                        .is_some()
                })
            }
        };
        let (shrunk, shrink_stats) =
            shrink(&case.expr, self.config.shrink_attempts, predicate);
        Discrepancy {
            iteration: case.index,
            case_kind: case.kind,
            input: case.expr,
            output,
            kind,
            shrunk,
            shrink_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(iterations: u64) -> FuzzConfig {
        FuzzConfig {
            iterations,
            jobs: 2,
            ..FuzzConfig::default()
        }
    }

    #[test]
    fn clean_run_on_the_real_simplifier() {
        let report = Fuzzer::new(quick_config(48)).run();
        assert!(
            report.is_clean(),
            "unexpected discrepancies: {:?}",
            report.discrepancies
        );
        assert_eq!(report.iterations, 48);
        assert!(report.oracle.checks >= 48);
        assert!(!report.stopped_early);
    }

    #[test]
    fn reports_are_deterministic_across_job_counts() {
        let run = |jobs| {
            let mut c = quick_config(32);
            c.jobs = jobs;
            Fuzzer::new(c).run()
        };
        let (a, b) = (run(1), run(4));
        assert_eq!(a.oracle, b.oracle);
        assert_eq!(a.per_kind, b.per_kind);
        assert_eq!(a.input_nodes, b.input_nodes);
        assert_eq!(a.output_nodes, b.output_nodes);
    }

    #[test]
    fn simplifier_actually_reduces_the_corpus() {
        let report = Fuzzer::new(quick_config(64)).run();
        assert!(
            report.output_nodes < report.input_nodes,
            "no reduction: {} -> {}",
            report.input_nodes,
            report.output_nodes
        );
    }

    #[test]
    fn discrepancy_cap_stops_the_run() {
        let mut config = quick_config(500);
        config.simplify.injected_bug = Some(mba_solver::InjectedBug::OffByOne);
        config.max_discrepancies = 2;
        let report = Fuzzer::new(config).run();
        assert_eq!(report.discrepancies.len(), 2);
        assert!(report.stopped_early);
        assert!(report.iterations < 500);
    }
}
