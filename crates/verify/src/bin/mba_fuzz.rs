//! `mba_fuzz`: the differential fuzzing CLI.
//!
//! Runs the `mba-verify` harness — seeded case generation, three
//! simplify paths, tiered equivalence oracles, shrinking — and writes a
//! `BENCH_fuzz.json` summary. Exit status is non-zero iff a
//! discrepancy was found, so CI can gate on it directly:
//!
//! ```text
//! $ mba_fuzz --iterations 10000 --seed 42
//! mba_fuzz: 10000 iterations, seed 42 ... clean (12.3s)
//! ```

use std::process::ExitCode;
use std::time::Duration;

use mba_bench::report::BenchReport;
use mba_verify::corpus::{append_reproducer, default_corpus_dir};
use mba_verify::{FuzzConfig, Fuzzer};

fn usage() {
    eprintln!(
        "usage: mba_fuzz [options]\n\
         \n\
         options:\n\
         \x20 --iterations N       cases to run (default 1000)\n\
         \x20 --seed S             root seed; the run is a pure function of it (default 42)\n\
         \x20 --jobs N             worker threads (default: all cores)\n\
         \x20 --time-budget-ms MS  stop starting new chunks after MS milliseconds\n\
         \x20 --max-depth D        random-AST depth (default 4)\n\
         \x20 --vars N             variables per case (default 3)\n\
         \x20 --obfuscated F       fraction of obfuscator-built cases, 0..1 (default 0.4)\n\
         \x20 --miter-conflicts N  SAT conflict budget per miter (default 2000)\n\
         \x20 --no-smt             disable the SAT miter tier (eval + truth tables only)\n\
         \x20 --write-corpus       append shrunk reproducers to crates/verify/corpus/\n\
         \x20 --quiet              suppress the per-discrepancy dump"
    );
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> Result<T, String> {
    value
        .and_then(|v| v.parse::<T>().ok())
        .ok_or_else(|| format!("mba_fuzz: {flag} requires a value"))
}

fn run() -> Result<ExitCode, String> {
    let mut config = FuzzConfig::default();
    let mut write_corpus = false;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--iterations" | "-n" => config.iterations = parse(&arg, args.next())?,
            "--seed" | "-s" => config.seed = parse(&arg, args.next())?,
            "--jobs" | "-j" => config.jobs = parse(&arg, args.next())?,
            "--time-budget-ms" => {
                config.time_budget =
                    Some(Duration::from_millis(parse(&arg, args.next())?));
            }
            "--max-depth" => config.case.random.max_depth = parse(&arg, args.next())?,
            "--vars" => config.case.random.num_vars = parse(&arg, args.next())?,
            "--obfuscated" => {
                config.case.obfuscated_fraction = parse::<f64>(&arg, args.next())?;
                if !(0.0..=1.0).contains(&config.case.obfuscated_fraction) {
                    return Err("mba_fuzz: --obfuscated must be in 0..1".into());
                }
            }
            "--miter-conflicts" => config.oracle.miter_conflicts = parse(&arg, args.next())?,
            "--no-smt" => config.oracle.miter_node_limit = 0,
            "--write-corpus" => write_corpus = true,
            "--quiet" | "-q" => quiet = true,
            "--help" | "-h" => {
                usage();
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("mba_fuzz: unknown option `{other}`")),
        }
    }

    let fuzzer = Fuzzer::new(config.clone());
    let report = fuzzer.run();

    let mut bench = BenchReport::new("fuzz");
    bench
        .push_int("seed", report.seed)
        .push_int("iterations", report.iterations)
        .push_float("wall_clock_s", report.wall_time.as_secs_f64())
        .push_bool("stopped_early", report.stopped_early)
        .push_int("discrepancies", report.discrepancies.len() as u64)
        .push_int("input_nodes", report.input_nodes)
        .push_int("output_nodes", report.output_nodes)
        .push_int("oracle_checks", report.oracle.checks)
        .push_int("oracle_evaluations", report.oracle.evaluations)
        .push_int("oracle_truth_tables", report.oracle.truth_tables)
        .push_int("oracle_truth_table_proofs", report.oracle.truth_table_proofs)
        .push_int("oracle_miters", report.oracle.miters)
        .push_int("oracle_miter_proofs", report.oracle.miter_proofs)
        .push_int("oracle_miter_rewrite_closed", report.oracle.miter_rewrite_closed)
        .push_int("oracle_miter_unknowns", report.oracle.miter_unknowns)
        .push_int("oracle_miter_skipped", report.oracle.miter_skipped)
        .push_int("oracle_miter_conflicts", report.oracle.miter_conflicts)
        .push_int("shrink_attempts", report.shrink.attempts)
        .push_int("shrink_accepted", report.shrink.accepted)
        .push_stage_breakdown(&fuzzer.metrics().snapshot());
    for (kind, count) in &report.per_kind {
        bench.push_int(&format!("cases_{kind}"), *count);
    }
    match bench.write() {
        Ok(path) => {
            if !quiet {
                eprintln!("mba_fuzz: wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("mba_fuzz: cannot write bench report: {e}"),
    }

    let proofs = report.oracle.proofs();
    eprintln!(
        "mba_fuzz: {} iterations, seed {}, {} proved / {} checked, \
         {:.1}% node reduction ({:.2}s)",
        report.iterations,
        report.seed,
        proofs,
        report.oracle.checks,
        100.0 * (1.0 - report.output_nodes as f64 / report.input_nodes.max(1) as f64),
        report.wall_time.as_secs_f64(),
    );

    if report.is_clean() {
        eprintln!("mba_fuzz: clean — no discrepancies");
        return Ok(ExitCode::SUCCESS);
    }

    eprintln!(
        "mba_fuzz: {} DISCREPANCIES{}",
        report.discrepancies.len(),
        if report.stopped_early { " (stopped early)" } else { "" }
    );
    for d in &report.discrepancies {
        if !quiet {
            eprintln!("  iteration {} [{}]: {}", d.iteration, d.case_kind, d.kind);
            eprintln!("    input:  {}", d.input);
            eprintln!("    output: {}", d.output);
            eprintln!("    shrunk: {} ({} nodes)", d.shrunk, d.shrunk.node_count());
        }
        if write_corpus {
            match append_reproducer(&default_corpus_dir(), d, report.seed) {
                Ok(path) => eprintln!("    corpus: {}", path.display()),
                Err(e) => eprintln!("    corpus: write failed: {e}"),
            }
        }
    }
    Ok(ExitCode::FAILURE)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(message) => {
            eprintln!("{message}");
            usage();
            ExitCode::FAILURE
        }
    }
}
