//! Deterministic fuzz-case generation.
//!
//! Two complementary sources feed the fuzzer:
//!
//! * **Structural random ASTs** ([`mba_gen::random_expr`]) — arbitrary
//!   trees over the full MBA grammar with no known ground truth. These
//!   exercise the simplifier on inputs *outside* the obfuscators'
//!   image, where normalization bugs hide.
//! * **Obfuscator cases** ([`mba_gen::Obfuscator`]) — a small ground
//!   truth is obfuscated into the linear / polynomial / non-polynomial
//!   categories. These exercise exactly the paper's workload, and the
//!   known ground truth gives the harness a free extra oracle: the
//!   simplified output must also agree with the target.
//! * **Wide-bitwise cases** — a pure-bitwise chain over 13–16
//!   variables, inflated with semantics-preserving redundancy
//!   (idempotence, absorption, double negation). These sit past the
//!   truth-table tiers' variable cap, so they are the only stream
//!   traffic that reaches the BDD canonicalization tier and the BDD
//!   equivalence-oracle tier; structural random ASTs at default
//!   settings essentially never do.
//!
//! Every case is a pure function of `(seed, index)` — the worker that
//! happens to pick up iteration `i` has no influence on what case `i`
//! is, so `--jobs` never changes the case stream.

use mba_expr::Expr;
use mba_gen::{random_expr, ObfuscationKind, Obfuscator, RandomExprConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How a fuzz case was constructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CaseKind {
    /// Structural random AST, no ground truth.
    RandomAst,
    /// Linear MBA obfuscation of a known target.
    Linear,
    /// Semi-linear MBA obfuscation (constants in the bitwise layer) of
    /// a known target.
    SemiLinear,
    /// Polynomial MBA obfuscation of a known target.
    Polynomial,
    /// Non-polynomial MBA obfuscation of a known target.
    NonPolynomial,
    /// Residual obfuscation of a known target: parity opaque zeros the
    /// algebraic pipeline cannot cancel, exercising the synthesis tier.
    Residual,
    /// Redundancy-inflated pure-bitwise chain over 13–16 variables,
    /// past the truth-table caps: exercises the BDD tiers.
    WideBitwise,
}

impl std::fmt::Display for CaseKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CaseKind::RandomAst => "random-ast",
            CaseKind::Linear => "linear",
            CaseKind::SemiLinear => "semi-linear",
            CaseKind::Polynomial => "poly",
            CaseKind::NonPolynomial => "non-poly",
            CaseKind::Residual => "residual",
            CaseKind::WideBitwise => "wide-bitwise",
        })
    }
}

/// Tuning knobs for case generation.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseConfig {
    /// Structural random-AST generator settings.
    pub random: RandomExprConfig,
    /// Fraction of cases built by the obfuscator instead of the
    /// structural generator (obfuscator kinds rotate evenly).
    pub obfuscated_fraction: f64,
    /// Maximum depth of obfuscation ground truths (kept small so the
    /// obfuscated result stays within oracle reach).
    pub target_depth: usize,
    /// Fraction of cases built as wide (13–16 variable) redundant
    /// pure-bitwise chains, the only stream traffic past the
    /// truth-table tiers' variable cap.
    pub wide_bitwise_fraction: f64,
}

impl Default for CaseConfig {
    fn default() -> Self {
        CaseConfig {
            random: RandomExprConfig::default(),
            obfuscated_fraction: 0.4,
            target_depth: 2,
            wide_bitwise_fraction: 0.05,
        }
    }
}

/// One generated fuzz case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// Iteration index the case belongs to.
    pub index: u64,
    /// Construction category.
    pub kind: CaseKind,
    /// The expression under test.
    pub expr: Expr,
    /// Ground truth (obfuscator cases only): `expr ≡ target` holds by
    /// construction, so the simplified output must match it too.
    pub target: Option<Expr>,
}

/// Splits `(seed, index)` into an independent per-case RNG stream.
///
/// A plain `seed + index` would make adjacent seeds share most of
/// their case streams; the 64-bit finalizer decorrelates them.
pub fn case_rng(seed: u64, index: u64) -> StdRng {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    StdRng::seed_from_u64(z ^ (z >> 31))
}

/// Builds a wide-bitwise case: a pure-bitwise chain over `t ∈ 13..=16`
/// variables *in variable order* (so its BDD stays a bounded-width
/// band regardless of `t`), optionally complemented, then inflated
/// with semantics-preserving redundancy. The pre-inflation chain is
/// the ground truth.
fn wide_bitwise_case(rng: &mut StdRng) -> (Expr, Expr) {
    use mba_expr::{BinOp, UnOp};
    let t = rng.gen_range(13..=16usize);
    let names: Vec<String> = (0..t).map(|i| ((b'a' + i as u8) as char).to_string()).collect();
    let mut base = Expr::var(names[0].as_str());
    for name in &names[1..] {
        let op = match rng.gen_range(0..3) {
            0 => BinOp::And,
            1 => BinOp::Or,
            _ => BinOp::Xor,
        };
        base = Expr::binary(op, base, Expr::var(name.as_str()));
    }
    if rng.gen_bool(0.5) {
        base = Expr::unary(UnOp::Not, base);
    }
    let target = base.clone();
    let mut e = base;
    for _ in 0..rng.gen_range(2..=4) {
        if e.node_count() > 96 {
            break;
        }
        e = match rng.gen_range(0..5) {
            0 => Expr::binary(BinOp::And, e.clone(), e),
            1 => Expr::binary(BinOp::Or, e.clone(), e),
            2 => Expr::unary(UnOp::Not, Expr::unary(UnOp::Not, e)),
            3 => {
                let v = Expr::var(names[rng.gen_range(0..t)].as_str());
                Expr::binary(BinOp::Or, e.clone(), Expr::binary(BinOp::And, e, v))
            }
            _ => {
                let v = Expr::var(names[rng.gen_range(0..t)].as_str());
                Expr::binary(BinOp::And, e.clone(), Expr::binary(BinOp::Or, e, v))
            }
        };
    }
    (e, target)
}

/// Generates case `index` of the stream rooted at `seed`.
pub fn generate_case(seed: u64, index: u64, config: &CaseConfig) -> FuzzCase {
    let mut rng = case_rng(seed, index);
    if rng.gen_bool(config.wide_bitwise_fraction.clamp(0.0, 1.0)) {
        let (expr, target) = wide_bitwise_case(&mut rng);
        return FuzzCase {
            index,
            kind: CaseKind::WideBitwise,
            expr,
            target: Some(target),
        };
    }
    if rng.gen_bool(config.obfuscated_fraction.clamp(0.0, 1.0)) {
        let kind = match index % 5 {
            0 => ObfuscationKind::Linear,
            1 => ObfuscationKind::SemiLinear,
            2 => ObfuscationKind::Polynomial,
            3 => ObfuscationKind::NonPolynomial,
            _ => ObfuscationKind::Residual,
        };
        let target_config = RandomExprConfig {
            max_depth: config.target_depth,
            ..config.random.clone()
        };
        let target = random_expr(&mut rng, &target_config);
        let expr = Obfuscator::new().obfuscate(&target, kind, &mut rng);
        FuzzCase {
            index,
            kind: match kind {
                ObfuscationKind::Linear => CaseKind::Linear,
                ObfuscationKind::SemiLinear => CaseKind::SemiLinear,
                ObfuscationKind::Polynomial => CaseKind::Polynomial,
                ObfuscationKind::NonPolynomial => CaseKind::NonPolynomial,
                ObfuscationKind::Residual => CaseKind::Residual,
            },
            expr,
            target: Some(target),
        }
    } else {
        FuzzCase {
            index,
            kind: CaseKind::RandomAst,
            expr: random_expr(&mut rng, &config.random),
            target: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mba_expr::Valuation;

    #[test]
    fn cases_are_deterministic_in_seed_and_index() {
        let config = CaseConfig::default();
        for i in 0..32 {
            let a = generate_case(42, i, &config);
            let b = generate_case(42, i, &config);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn different_indices_give_different_cases() {
        let config = CaseConfig::default();
        let distinct: std::collections::BTreeSet<String> = (0..64)
            .map(|i| generate_case(7, i, &config).expr.to_string())
            .collect();
        assert!(distinct.len() > 48, "case stream should not repeat");
    }

    #[test]
    fn adjacent_seeds_do_not_share_streams() {
        let config = CaseConfig::default();
        let same = (0..64)
            .filter(|&i| {
                generate_case(1, i, &config).expr == generate_case(2, i, &config).expr
            })
            .count();
        assert!(same < 8, "seeds 1 and 2 share {same}/64 cases");
    }

    #[test]
    fn obfuscated_cases_carry_a_faithful_ground_truth() {
        let config = CaseConfig {
            obfuscated_fraction: 1.0,
            wide_bitwise_fraction: 0.0,
            ..CaseConfig::default()
        };
        let mut seen_kinds = std::collections::BTreeSet::new();
        for i in 0..32 {
            let case = generate_case(11, i, &config);
            seen_kinds.insert(case.kind);
            let target = case.target.expect("obfuscated case has a target");
            let mut rng = case_rng(99, i);
            for _ in 0..16 {
                let v: Valuation = case
                    .expr
                    .vars()
                    .into_iter()
                    .chain(target.vars())
                    .map(|x| (x, rng.gen()))
                    .collect();
                for width in [8, 64] {
                    assert_eq!(
                        case.expr.eval(&v, width),
                        target.eval(&v, width),
                        "case {i} expr `{}` disagrees with target `{target}`",
                        case.expr,
                    );
                }
            }
        }
        assert_eq!(seen_kinds.len(), 5, "all five obfuscation kinds appear");
    }

    #[test]
    fn random_ast_cases_have_no_target() {
        let config = CaseConfig {
            obfuscated_fraction: 0.0,
            wide_bitwise_fraction: 0.0,
            ..CaseConfig::default()
        };
        for i in 0..16 {
            let case = generate_case(5, i, &config);
            assert_eq!(case.kind, CaseKind::RandomAst);
            assert!(case.target.is_none());
        }
    }

    #[test]
    fn wide_bitwise_cases_are_wide_redundant_and_faithful() {
        let config = CaseConfig {
            wide_bitwise_fraction: 1.0,
            ..CaseConfig::default()
        };
        for i in 0..32 {
            let case = generate_case(3, i, &config);
            assert_eq!(case.kind, CaseKind::WideBitwise);
            let target = case.target.expect("wide case has a target");
            let nvars = case.expr.vars().len();
            assert!(
                (13..=16).contains(&nvars),
                "case {i} has {nvars} vars: `{}`",
                case.expr
            );
            assert_eq!(case.expr.vars(), target.vars());
            assert!(
                case.expr.node_count() > target.node_count(),
                "case {i} carries no redundancy"
            );
            let mut rng = case_rng(77, i);
            for _ in 0..16 {
                let v: Valuation = case
                    .expr
                    .vars()
                    .into_iter()
                    .map(|x| (x, rng.gen()))
                    .collect();
                for width in [8, 64] {
                    assert_eq!(case.expr.eval(&v, width), target.eval(&v, width));
                }
            }
        }
    }
}
