//! The checked-in regression corpus.
//!
//! Every shrunk discrepancy the fuzzer ever finds is appended here as a
//! small text file and replayed forever after as a normal `cargo test`
//! (see `tests/regression_corpus.rs`). The format is deliberately
//! trivial — `#` comment lines carrying provenance, then one expression
//! per surviving line:
//!
//! ```text
//! # found-by: mba_fuzz --seed 42 (iteration 17)
//! # kind: unsound
//! # witness: [eval] width 8: {x=255} gives 3 vs 4
//! ~(x - 1)
//! ```
//!
//! Replaying a reproducer means running it through all three simplify
//! paths and the full oracle stack; the file passes when no invariant
//! breaks. Seed entries pin historically interesting shapes (the
//! paper's Figure 1, the `~(x-1)` negation fold, signed-constant
//! folding) even though they never failed, so the corpus is never
//! empty and the replay harness itself stays exercised.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use mba_expr::Expr;

use crate::harness::Discrepancy;

/// One parsed corpus entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reproducer {
    /// The expression to replay.
    pub expr: Expr,
    /// Provenance comments (without the leading `#`), in file order.
    pub notes: Vec<String>,
}

/// The corpus directory checked into this crate.
pub fn default_corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Parses one corpus file: `#` comments, blank lines, then exactly one
/// expression line.
pub fn parse_reproducer(text: &str) -> Result<Reproducer, String> {
    let mut notes = Vec::new();
    let mut expr: Option<Expr> = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(note) = line.strip_prefix('#') {
            notes.push(note.trim().to_string());
            continue;
        }
        if expr.is_some() {
            return Err("corpus file has more than one expression line".into());
        }
        expr = Some(
            line.parse::<Expr>()
                .map_err(|e| format!("bad expression `{line}`: {e}"))?,
        );
    }
    match expr {
        Some(expr) => Ok(Reproducer { expr, notes }),
        None => Err("corpus file has no expression line".into()),
    }
}

/// Loads every `.txt` reproducer under `dir`, sorted by file name so
/// replay order is stable.
pub fn load_dir(dir: &Path) -> Result<Vec<(PathBuf, Reproducer)>, String> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    files.sort();
    files
        .into_iter()
        .map(|path| {
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            let rep = parse_reproducer(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            Ok((path, rep))
        })
        .collect()
}

/// Renders a shrunk discrepancy in the corpus format.
pub fn render_reproducer(d: &Discrepancy, seed: u64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# found-by: mba_fuzz --seed {seed} (iteration {}, case {})\n",
        d.iteration, d.case_kind
    ));
    out.push_str(&format!("# kind: {}\n", d.kind));
    out.push_str(&format!("# original-input: {}\n", d.input));
    out.push_str(&format!("# original-output: {}\n", d.output));
    out.push_str(&format!("{}\n", d.shrunk));
    out
}

/// A short stable digest of an expression (FNV-1a over its printed
/// form), used for collision-free corpus file names.
fn expr_digest(e: &Expr) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in e.to_string().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Appends a shrunk discrepancy to the corpus directory, returning the
/// path written. Idempotent per reproducer: the file name is derived
/// from the shrunk expression, so re-finding the same bug overwrites
/// rather than duplicates.
pub fn append_reproducer(dir: &Path, d: &Discrepancy, seed: u64) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(format!("shrunk-{:016x}.txt", expr_digest(&d.shrunk)));
    let mut file = fs::File::create(&path)?;
    file.write_all(render_reproducer(d, seed).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_comments_then_expression() {
        let rep = parse_reproducer("# kind: unsound\n\n# note two\nx + y*3\n").unwrap();
        assert_eq!(rep.expr.to_string(), "x+y*3");
        assert_eq!(rep.notes, ["kind: unsound", "note two"]);
    }

    #[test]
    fn rejects_empty_and_multi_expression_files() {
        assert!(parse_reproducer("# only comments\n").is_err());
        assert!(parse_reproducer("x\ny\n").is_err());
        assert!(parse_reproducer("not @ valid\n").is_err());
    }

    #[test]
    fn seed_corpus_is_present_and_parses() {
        let entries = load_dir(&default_corpus_dir()).unwrap();
        assert!(
            entries.len() >= 4,
            "seed corpus should have several entries, found {}",
            entries.len()
        );
    }

    #[test]
    fn digest_is_stable() {
        let e: Expr = "x + y".parse().unwrap();
        assert_eq!(expr_digest(&e), expr_digest(&"x + y".parse().unwrap()));
        assert_ne!(expr_digest(&e), expr_digest(&"x - y".parse().unwrap()));
    }
}
