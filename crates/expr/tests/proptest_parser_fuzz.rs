//! Parser robustness: arbitrary byte soup must never panic, and valid
//! outputs must round-trip.

use mba_expr::Expr;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings either parse or error — never panic.
    #[test]
    fn arbitrary_strings_never_panic(input in ".{0,64}") {
        let _ = input.parse::<Expr>();
    }

    /// Strings from the expression alphabet (denser in valid inputs)
    /// also never panic, and successes print/parse stably.
    #[test]
    fn expression_alphabet_soup(input in "[-~ ()xyz0-9+*&|^]{0,48}") {
        if let Ok(e) = input.parse::<Expr>() {
            let printed = e.to_string();
            let reparsed: Expr = printed.parse().expect("printed form parses");
            prop_assert_eq!(reparsed.to_string(), printed);
        }
    }

    /// Pathologically deep nesting parses without stack overflow at the
    /// sizes the corpus can produce.
    #[test]
    fn deep_nesting_is_fine(depth in 1usize..200) {
        let src = format!("{}x{}", "(".repeat(depth), ")".repeat(depth));
        let e: Expr = src.parse().expect("balanced parens parse");
        prop_assert_eq!(e, Expr::var("x"));
        let negs = format!("{}x", "-".repeat(depth));
        prop_assert!(negs.parse::<Expr>().is_ok());
    }
}
