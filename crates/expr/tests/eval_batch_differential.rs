//! Differential tests pinning the batch evaluation engine to the scalar
//! tree-walking evaluator: for any expression, any valuations, and any
//! width, `EvalProgram::eval_batch` must be byte-identical to
//! `Expr::eval`, and `eval_valuations` to `Expr::eval_checked`.

use mba_expr::{BinOp, EvalProgram, Expr, UnOp, Valuation};
use proptest::prelude::*;

/// Strategy generating arbitrary MBA expressions over {x, y, z}.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i128..=64).prop_map(Expr::Const),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            (inner, arb_unop()).prop_map(|(e, op)| Expr::unary(op, e)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

/// The widths the verify oracles and signature layer actually use, plus
/// the boundary cases (1, full word, one-off-full).
const WIDTHS: [u32; 5] = [1, 7, 8, 63, 64];

proptest! {
    /// One tape pass over a batch of valuations equals one tree walk per
    /// valuation, at every width the pipeline exercises.
    #[test]
    fn batch_eval_matches_scalar_eval(
        e in arb_expr(),
        points in prop::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 1..8),
    ) {
        let program = EvalProgram::compile(&e);
        let valuations: Vec<Valuation> = points
            .iter()
            .map(|&(x, y, z)| Valuation::new().with("x", x).with("y", y).with("z", z))
            .collect();
        let columns = program.bind(&valuations).expect("x, y, z are all bound");
        for &width in &WIDTHS {
            let batch = program.eval_batch(valuations.len(), &columns, width);
            for (lane, v) in valuations.iter().enumerate() {
                prop_assert_eq!(
                    batch[lane],
                    e.eval(v, width),
                    "lane {} of `{}` at width {}", lane, e, width
                );
            }
        }
    }

    /// The strict scalar evaluator agrees with the lenient one whenever
    /// every variable is bound, and `eval_valuations` (the strict batch
    /// entry point) agrees with both.
    #[test]
    fn checked_and_batch_agree_when_fully_bound(
        e in arb_expr(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
    ) {
        let v = Valuation::new().with("x", x).with("y", y).with("z", z);
        let program = EvalProgram::compile(&e);
        for &width in &WIDTHS {
            let scalar = e.eval(&v, width);
            prop_assert_eq!(e.eval_checked(&v, width).unwrap(), scalar);
            let batch = program
                .eval_valuations(std::slice::from_ref(&v), width)
                .unwrap();
            prop_assert_eq!(batch, vec![scalar]);
        }
    }
}
