//! Width-64 evaluation audit (ISSUE satellite).
//!
//! The evaluator's masking has a special case at width 64 — `mask`
//! must not compute `1u64 << 64` (which would overflow/panic in debug
//! and wrap to a zero mask in release, silently zeroing every result).
//! These tests pin that boundary, the i128 → u64 constant truncation,
//! and two's-complement wrapping at the top of the `u64` range.

use mba_expr::{mask, Expr, Valuation};

fn v(pairs: &[(&str, u64)]) -> Valuation {
    pairs.iter().map(|&(n, x)| (n.into(), x)).collect()
}

fn eval(src: &str, vals: &[(&str, u64)], width: u32) -> u64 {
    src.parse::<Expr>().unwrap().eval(&v(vals), width)
}

#[test]
fn mask_width_64_is_the_identity() {
    // The `1u64 << 64` trap: a naive mask would be 0 here.
    assert_eq!(mask(u64::MAX, 64), u64::MAX);
    assert_eq!(mask(0, 64), 0);
    assert_eq!(mask(0x8000_0000_0000_0000, 64), 0x8000_0000_0000_0000);
}

#[test]
fn mask_width_63_drops_exactly_the_top_bit() {
    assert_eq!(mask(u64::MAX, 63), u64::MAX >> 1);
    assert_eq!(mask(1u64 << 63, 63), 0);
    assert_eq!(mask((1u64 << 63) | 5, 63), 5);
}

#[test]
fn mask_width_1_keeps_only_the_low_bit() {
    assert_eq!(mask(u64::MAX, 1), 1);
    assert_eq!(mask(2, 1), 0);
}

#[test]
#[should_panic(expected = "width must be in 1..=64")]
fn width_65_is_rejected_not_wrapped() {
    let e: Expr = "x".parse().unwrap();
    e.eval(&Valuation::new(), 65);
}

#[test]
fn width64_addition_wraps_at_2_pow_64() {
    assert_eq!(eval("x + 1", &[("x", u64::MAX)], 64), 0);
    assert_eq!(eval("x + y", &[("x", u64::MAX), ("y", u64::MAX)], 64), u64::MAX - 1);
}

#[test]
fn width64_multiplication_wraps() {
    // (2^32 + 1)^2 = 2^64 + 2^33 + 1 ≡ 2^33 + 1 (mod 2^64).
    let x = (1u64 << 32) + 1;
    assert_eq!(eval("x * x", &[("x", x)], 64), (1u64 << 33) + 1);
    assert_eq!(eval("x * x", &[("x", 1u64 << 32)], 64), 0);
}

#[test]
fn width64_negation_is_twos_complement() {
    assert_eq!(eval("-x", &[("x", 1)], 64), u64::MAX);
    assert_eq!(eval("-x", &[("x", u64::MAX)], 64), 1);
    assert_eq!(eval("-x", &[("x", 0)], 64), 0);
    // The width-64 "INT_MIN": its negation is itself.
    let min = 1u64 << 63;
    assert_eq!(eval("-x", &[("x", min)], 64), min);
}

#[test]
fn negative_constants_truncate_to_all_ones_at_every_width() {
    for width in [1, 7, 8, 31, 32, 63, 64] {
        assert_eq!(eval("0 - 1", &[], width), mask(u64::MAX, width), "width {width}");
        assert_eq!(eval("-1", &[], width), mask(u64::MAX, width), "width {width}");
    }
}

#[test]
fn i128_constants_truncate_modulo_2_pow_64() {
    // 2^64 ≡ 0, 2^64 + 7 ≡ 7, -(2^64) ≡ 0: the i128 → u64 cast is the
    // reduction mod 2^64 and must commute with arithmetic.
    let e = Expr::Const(1i128 << 64);
    assert_eq!(e.eval(&Valuation::new(), 64), 0);
    let e = Expr::Const((1i128 << 64) + 7);
    assert_eq!(e.eval(&Valuation::new(), 64), 7);
    let e = Expr::Const(-(1i128 << 64));
    assert_eq!(e.eval(&Valuation::new(), 64), 0);
    // i128::MIN = -(2^127) ≡ 0 mod 2^64 — the extreme cast case.
    let e = Expr::Const(i128::MIN);
    assert_eq!(e.eval(&Valuation::new(), 64), 0);
    // i128::MAX = 2^127 - 1 ≡ 2^64 - 1 mod 2^64.
    let e = Expr::Const(i128::MAX);
    assert_eq!(e.eval(&Valuation::new(), 64), u64::MAX);
}

#[test]
fn not_at_width64_flips_all_64_bits() {
    assert_eq!(eval("~x", &[("x", 0)], 64), u64::MAX);
    assert_eq!(eval("~x", &[("x", 0x5555_5555_5555_5555)], 64), 0xaaaa_aaaa_aaaa_aaaa);
}

#[test]
fn mba_identities_hold_at_the_width64_boundary() {
    // x + y == (x|y) + (x&y) and ~(x-1) == -x, at the values where
    // 64-bit carries actually occur.
    let corner = [0u64, 1, u64::MAX, u64::MAX - 1, 1u64 << 63, (1u64 << 63) - 1];
    for &x in &corner {
        for &y in &corner {
            let vals = [("x", x), ("y", y)];
            assert_eq!(
                eval("x + y", &vals, 64),
                eval("(x|y) + (x&y)", &vals, 64),
                "x={x} y={y}"
            );
            assert_eq!(eval("~(x - 1)", &vals, 64), eval("-x", &vals, 64), "x={x}");
        }
    }
}

#[test]
fn unbound_variables_read_zero_at_width64() {
    assert_eq!(eval("x + ghost", &[("x", 5)], 64), 5);
}

#[test]
fn valuation_values_are_masked_at_use_width() {
    // A valuation built for 64-bit reuse at width 8 must reduce values
    // mod 2^8, not reject or misread them.
    assert_eq!(eval("x", &[("x", 0x1ff)], 8), 0xff);
    assert_eq!(eval("x + 1", &[("x", 0x1ff)], 8), 0);
}
