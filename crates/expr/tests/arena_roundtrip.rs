//! The `parse → intern → extract → print → parse` fixpoint: an
//! expression that enters the arena leaves it printing — and reparsing —
//! to exactly what it was. Interning must not perturb the wire format:
//! corpus files, goldens, and the serve protocol all speak printed
//! expressions, so a single folded or reordered node here would corrupt
//! them silently. Negated-literal chains (`-0`, `- -1`) get dedicated
//! coverage: the PR 6 regression showed they are where a "harmless"
//! normalization is most tempting and most wrong.

use mba_expr::{BinOp, Expr, ExprArena, UnOp};
use proptest::prelude::*;

/// Runs one expression through the full cycle and asserts the fixpoint.
#[track_caller]
fn assert_fixpoint(e: &Expr) {
    let arena = ExprArena::new();
    let back = arena.extract(arena.intern(e));
    assert_eq!(&back, e, "intern/extract changed the tree");
    let printed = back.to_string();
    assert_eq!(printed, e.to_string(), "printing diverged after interning");
    let reparsed: Expr = printed.parse().expect("printed form must parse");
    assert_eq!(
        reparsed.to_string(),
        printed,
        "reparse of `{printed}` is not a print fixpoint"
    );
    // The reparsed tree interns to a structurally equal node whenever
    // the parse is lossless (the parser folds `-CONST`, so compare via
    // a second print rather than tree equality).
    let id2 = arena.intern(&reparsed);
    assert_eq!(arena.extract(id2).to_string(), printed);
}

#[test]
fn parsed_corpus_is_a_fixpoint() {
    for src in [
        "x",
        "-5",
        "2*(x|y) - (~x&y) - (x&~y)",
        "(x^y) + 2*(x|~y) + 2",
        "(x&~y)*(~x&y) + (x&y)*(x|y)",
        "((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)",
        "~(x - 1)",
        "(x & 240) + (x & ~240)",
        "(x | 5) + (x & 5)",
        "x & -4",
        "-x - 1",
        "(a&b&c&d&e&f) + (a|b)",
    ] {
        let e: Expr = src.parse().unwrap();
        assert_fixpoint(&e);
    }
}

#[test]
fn negated_literal_chains_survive_interning_unfolded() {
    // These trees cannot be written in source (the parser folds
    // `-CONST`), so build them directly — exactly the shapes the PR 6
    // negated-literal regression pinned. The arena must store and
    // return them *as trees*, even though its metadata folds their
    // literal value for the pure-bitwise predicate.
    let neg = |e| Expr::unary(UnOp::Neg, e);
    let cases = [
        neg(Expr::Const(0)),                        // -0
        neg(Expr::Const(-1)),                       // - -1
        neg(neg(Expr::Const(-1))),                  // - - -1
        neg(neg(neg(Expr::Const(7)))),              // deep chain, non-uniform
        Expr::binary(
            BinOp::Xor,
            neg(neg(Expr::Const(-1))),
            Expr::var("x"),
        ),
        Expr::binary(
            BinOp::Or,
            Expr::binary(BinOp::Xor, Expr::Const(-1), Expr::var("x")),
            neg(Expr::Const(0)),
        ),
    ];
    let arena = ExprArena::new();
    for e in &cases {
        let back = arena.extract(arena.intern(e));
        assert_eq!(&back, e, "interning folded a negated-literal chain");
        // The printed form reparses to the *parser-normal* tree (the
        // parser folds `-CONST` chains); interning must not change
        // which tree that is.
        let printed = back.to_string();
        let reparsed: Expr = printed.parse().expect("must parse");
        let normalized = fold_negated_consts(e);
        assert_eq!(
            reparsed, normalized,
            "`{printed}` reparses away from the parser-normal form"
        );
    }
}

/// The parser's `-CONST` folding, applied bottom-up — the normalization
/// under which print → parse is an exact tree fixpoint (same as
/// `proptest_roundtrip.rs` uses).
fn fold_negated_consts(e: &Expr) -> Expr {
    mba_expr::visit::transform_bottom_up(e, &mut |n| match n {
        Expr::Unary(UnOp::Neg, inner) => match *inner {
            Expr::Const(c) => Expr::Const(-c),
            other => Expr::unary(UnOp::Neg, other),
        },
        other => other,
    })
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i128..=64).prop_map(Expr::Const),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (
                inner.clone(),
                inner.clone(),
                prop_oneof![
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Xor),
                ]
            )
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            (inner, prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)])
                .prop_map(|(e, op)| Expr::unary(op, e)),
        ]
    })
}

proptest! {
    /// The full `parse → intern → extract → print → parse` cycle is a
    /// fixpoint on arbitrary trees. The generated tree is first pushed
    /// through the parser (whose `-CONST` folding defines the normal
    /// form wire formats carry); from there, interning must preserve
    /// the tree, the print, and the reparse exactly. Intern/extract
    /// identity on the *raw* (unfolded) tree is asserted too.
    #[test]
    fn random_trees_are_a_fixpoint(e in arb_expr()) {
        let arena = ExprArena::new();
        prop_assert_eq!(arena.extract(arena.intern(&e)), e.clone());
        let parsed: Expr = e.to_string().parse().expect("printed form must parse");
        let back = arena.extract(arena.intern(&parsed));
        prop_assert_eq!(&back, &parsed);
        let printed = back.to_string();
        let reparsed: Expr = printed.parse().expect("printed form must parse");
        prop_assert_eq!(
            reparsed,
            parsed,
            "`{}` is not a parse fixpoint",
            printed
        );
    }
}
