//! Property-based tests for the expression substrate:
//! print/parse round-tripping and evaluator consistency.

use mba_expr::{mask, BinOp, Expr, UnOp, Valuation};
use proptest::prelude::*;

/// Strategy generating arbitrary MBA expressions over {x, y, z}.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i128..=64).prop_map(Expr::Const),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            (inner, arb_unop()).prop_map(|(e, op)| Expr::unary(op, e)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

proptest! {
    /// Printing then parsing returns a structurally identical tree, except
    /// that the parser folds `Neg(Const(c))` into `Const(-c)`.
    #[test]
    fn print_parse_roundtrip(e in arb_expr()) {
        let normalized = mba_expr::visit::transform_bottom_up(&e, &mut |n| match n {
            Expr::Unary(UnOp::Neg, inner) => match *inner {
                Expr::Const(c) => Expr::Const(-c),
                other => Expr::unary(UnOp::Neg, other),
            },
            other => other,
        });
        let printed = normalized.to_string();
        let reparsed: Expr = printed.parse().expect("printed form must parse");
        prop_assert_eq!(reparsed, normalized, "printed `{}`", printed);
    }

    /// Evaluation at width w equals evaluation at 64 bits masked to w:
    /// truncation commutes with every MBA operator.
    #[test]
    fn eval_commutes_with_truncation(
        e in arb_expr(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
        w in 1u32..=63,
    ) {
        let v = Valuation::new().with("x", x).with("y", y).with("z", z);
        let vm = Valuation::new()
            .with("x", mask(x, w))
            .with("y", mask(y, w))
            .with("z", mask(z, w));
        prop_assert_eq!(e.eval(&vm, w), mask(e.eval(&v, 64), w));
    }

    /// The classifier is stable under printing: classifying the reparsed
    /// expression gives the same class.
    #[test]
    fn classification_stable_under_roundtrip(e in arb_expr()) {
        let reparsed: Expr = e.to_string().parse().expect("must parse");
        prop_assert_eq!(reparsed.mba_class(), e.mba_class());
    }

    /// Substituting a variable with itself is the identity.
    #[test]
    fn self_substitution_is_identity(e in arb_expr()) {
        let x = mba_expr::Ident::new("x");
        prop_assert_eq!(e.substitute(&x, &Expr::var("x")), e);
    }
}
