//! Arena-vs-tree differential properties: everything the hash-consed
//! [`ExprArena`] precomputes or compiles must agree, bit for bit, with
//! the `Box`-tree implementation it shadows. These hold the arena's core
//! contract — interning is lossless, id equality *is* structural
//! equality, per-node metadata replicates the tree predicates, and the
//! id-compiled evaluation tape is byte-identical to the tree-compiled
//! one (so every downstream consumer — truth tables, corner signatures,
//! coefficient recovery — inherits agreement for free).

use mba_expr::{BinOp, EvalProgram, Expr, ExprArena, UnOp, Valuation};
use proptest::prelude::*;

/// Strategy generating arbitrary MBA expressions over {x, y, z}.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i128..=64).prop_map(Expr::Const),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ];
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            (inner, arb_unop()).prop_map(|(e, op)| Expr::unary(op, e)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

proptest! {
    /// Interning then extracting returns a structurally identical tree —
    /// hash-consing shares storage, never meaning.
    #[test]
    fn intern_extract_roundtrip(e in arb_expr()) {
        let arena = ExprArena::new();
        let id = arena.intern(&e);
        prop_assert_eq!(arena.extract(id), e);
    }

    /// Structural equality of trees is id equality in a shared arena —
    /// both directions, which is what makes O(1) equality sound.
    #[test]
    fn structural_equality_is_id_equality(a in arb_expr(), b in arb_expr()) {
        let arena = ExprArena::new();
        let (ia, ib) = (arena.intern(&a), arena.intern(&b));
        prop_assert_eq!(a == b, ia == ib, "trees {} / {}", a, b);
    }

    /// Every piece of per-node metadata the arena precomputes at intern
    /// time agrees with the corresponding tree-walking predicate,
    /// including the negated-literal chain folding (`-0`, `- -1`) that
    /// `is_pure_bitwise` depends on.
    #[test]
    fn metadata_agrees_with_tree_predicates(e in arb_expr()) {
        let arena = ExprArena::new();
        let id = arena.intern(&e);
        prop_assert_eq!(arena.node_count(id), e.node_count());
        prop_assert_eq!(arena.is_pure_bitwise(id), e.is_pure_bitwise());
        prop_assert_eq!(
            arena.is_bitwise_with_consts(id),
            e.is_bitwise_with_consts()
        );
        prop_assert_eq!(arena.as_literal(id), e.as_literal());
        let tree_vars: Vec<_> = e.vars().into_iter().collect();
        prop_assert_eq!(arena.vars(id), tree_vars);
    }

    /// The id-level MBA classifier agrees with the tree classifier on
    /// every shape — linear, semi-linear, polynomial, non-polynomial.
    #[test]
    fn classification_agrees(e in arb_expr()) {
        let arena = ExprArena::new();
        prop_assert_eq!(arena.classify(arena.intern(&e)), e.mba_class());
    }

    /// Compiling straight from node ids emits the *same tape* as
    /// compiling the tree — and therefore evaluates identically at
    /// every width. Byte-identity of every downstream signature
    /// artifact reduces to this property.
    #[test]
    fn arena_tape_matches_tree_tape_and_eval(
        e in arb_expr(),
        x in any::<u64>(),
        y in any::<u64>(),
        z in any::<u64>(),
        w in 1u32..=64,
    ) {
        let arena = ExprArena::new();
        let id = arena.intern(&e);
        let tree = EvalProgram::compile(&e);
        let from_ids = EvalProgram::compile_arena(&arena, id);
        prop_assert_eq!(&from_ids, &tree, "tapes differ for `{}`", e);
        let v = Valuation::new().with("x", x).with("y", y).with("z", z);
        let got = from_ids
            .eval_valuations(std::slice::from_ref(&v), w)
            .expect("x/y/z bound")[0];
        prop_assert_eq!(got, e.eval(&v, w), "`{}` at width {}", e, w);
    }

    /// Re-interning the same tree into the same arena is a pure lookup:
    /// the id is stable and the node store does not grow.
    #[test]
    fn repeat_interning_is_stable_and_allocation_free(e in arb_expr()) {
        let arena = ExprArena::new();
        let first = arena.intern(&e);
        let len = arena.len();
        let hits = arena.stats().interned_hits;
        let second = arena.intern(&e);
        prop_assert_eq!(first, second);
        prop_assert_eq!(arena.len(), len);
        prop_assert!(arena.stats().interned_hits > hits);
    }
}
