//! Differential tests pinning the wide bit-parallel engine
//! (`EvalProgram::eval_bits_wide`, the synthesis tier's candidate
//! screen) to the narrow `eval_bits` pass and to the scalar evaluator:
//!
//! * word `w` of a wide pass must equal `eval_bits` of the `w`-th
//!   column of input words, for arbitrary expressions and arbitrary
//!   bit patterns;
//! * on truth-table inputs built with `row_bit_pattern` (2..=8
//!   variables), every row must match a scalar width-1 evaluation, and
//!   rows past `2^t` must echo with period `2^t` — the partial-block
//!   property the synthesis signature masking relies on;
//! * the low bit of a scalar evaluation at any width (1, 7, 8, 63, 64)
//!   must match the corresponding wide row, because bit 0 of modular
//!   arithmetic never sees a carry.

use mba_expr::{
    row_bit_pattern, BinOp, EvalProgram, Expr, UnOp, Valuation, WIDE_LANES,
};
use proptest::prelude::*;

/// Strategy generating arbitrary MBA expressions over up to 8
/// variables, so wide passes are exercised at every truth-table size
/// the synthesis tier uses (`t = 2..=8` plus degenerate smaller sets).
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-64i128..=64).prop_map(Expr::Const),
        prop_oneof![
            Just("a"),
            Just("b"),
            Just("c"),
            Just("d"),
            Just("e"),
            Just("f"),
            Just("g"),
            Just("h"),
        ]
        .prop_map(Expr::var),
    ];
    leaf.prop_recursive(6, 64, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), arb_binop())
                .prop_map(|(a, b, op)| Expr::binary(op, a, b)),
            (inner, arb_unop()).prop_map(|(e, op)| Expr::unary(op, e)),
        ]
    })
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

/// Truth-table input blocks for `t` variables, MSB-first (variable `j`
/// of `t` drives row-index bit `t − 1 − j`), exactly as the synthesis
/// signature extraction binds them.
fn truth_table_blocks(t: usize) -> Vec<[u64; WIDE_LANES]> {
    (0..t)
        .map(|j| {
            let p = (t - 1 - j) as u32;
            let mut block = [0u64; WIDE_LANES];
            for (w, word) in block.iter_mut().enumerate() {
                *word = row_bit_pattern(p, w);
            }
            block
        })
        .collect()
}

proptest! {
    /// Word `w` of one wide pass equals a narrow `eval_bits` pass over
    /// the `w`-th column of words, for arbitrary inputs.
    #[test]
    fn wide_equals_narrow_on_random_words(
        e in arb_expr(),
        words in prop::collection::vec(any::<u64>(), 8 * WIDE_LANES),
    ) {
        let program = EvalProgram::compile(&e);
        let t = program.vars().len();
        let blocks: Vec<[u64; WIDE_LANES]> = (0..t)
            .map(|j| {
                let mut block = [0u64; WIDE_LANES];
                for (w, word) in block.iter_mut().enumerate() {
                    *word = words[j * WIDE_LANES + w];
                }
                block
            })
            .collect();
        let wide = program.eval_bits_wide(&blocks);
        for w in 0..WIDE_LANES {
            let column: Vec<u64> = blocks.iter().map(|b| b[w]).collect();
            prop_assert_eq!(
                wide[w],
                program.eval_bits(&column),
                "word {} of `{}`", w, e
            );
        }
    }

    /// On truth-table inputs every wide row matches a scalar width-1
    /// evaluation, and rows past `2^t` echo with period `2^t` (the
    /// partial-block property the signature masking depends on).
    #[test]
    fn wide_truth_table_rows_match_scalar_width1(e in arb_expr()) {
        let program = EvalProgram::compile(&e);
        let t = program.vars().len();
        let blocks = truth_table_blocks(t);
        let wide = program.eval_bits_wide(&blocks);
        let rows = 1usize << t;
        let bit = |r: usize| (wide[r / 64] >> (r % 64)) & 1;
        for r in 0..rows.min(256) {
            let v: Valuation = program
                .vars()
                .iter()
                .enumerate()
                .map(|(j, name)| (name.clone(), ((r >> (t - 1 - j)) & 1) as u64))
                .collect();
            prop_assert_eq!(
                bit(r),
                e.eval(&v, 1),
                "row {} of `{}` (t = {})", r, e, t
            );
        }
        // Partial blocks: everything past the table proper is an echo.
        for r in rows..256 {
            prop_assert_eq!(bit(r), bit(r % rows), "echo row {} of `{}`", r, e);
        }
    }

    /// Bit 0 of a scalar evaluation is width-independent (no carry
    /// reaches down), so a wide row predicts the low bit of the full
    /// evaluation at every width the pipeline uses.
    #[test]
    fn wide_rows_predict_low_bit_at_every_width(
        e in arb_expr(),
        words in prop::collection::vec(any::<u64>(), 8),
    ) {
        let program = EvalProgram::compile(&e);
        let t = program.vars().len();
        let blocks: Vec<[u64; WIDE_LANES]> = (0..t)
            .map(|j| [words[j] & 1; WIDE_LANES])
            .collect();
        let wide = program.eval_bits_wide(&blocks);
        let v: Valuation = program
            .vars()
            .iter()
            .enumerate()
            .map(|(j, name)| (name.clone(), words[j]))
            .collect();
        for width in [1u32, 7, 8, 63, 64] {
            prop_assert_eq!(
                wide[0] & 1,
                e.eval(&v, width) & 1,
                "`{}` at width {}", e, width
            );
        }
    }
}
