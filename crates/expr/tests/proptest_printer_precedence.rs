//! Printer ↔ parser precedence tests (ISSUE satellite).
//!
//! The printer claims to emit *minimal* parentheses such that reparsing
//! reconstructs the exact tree. These tests attack that claim level by
//! level: for every ordered pair of binary operators — every precedence
//! relation the grammar has (`|` < `^` < `&` < `+`/`-` < `*` < unary) —
//! both nestings (`(a op1 b) op2 c` and `a op1 (b op2 c)`) must
//! round-trip structurally, and the emitted parentheses must be
//! *necessary*: stripping any minimal-printer parenthesis pair changes
//! (or breaks) the parse.

use mba_expr::{BinOp, Expr, UnOp};
use proptest::prelude::*;

const BINOPS: [BinOp; 6] = [
    BinOp::Or,
    BinOp::Xor,
    BinOp::And,
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
];

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::And),
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnOp> {
    prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
}

/// Leaves that cannot themselves trigger precedence effects (positive
/// constants and variables are atoms).
fn arb_atom() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i128..=9).prop_map(Expr::Const),
        prop_oneof![Just("x"), Just("y"), Just("z")].prop_map(Expr::var),
    ]
}

/// The parser folds `Neg(Const(c))` into `Const(-c)`; apply the same
/// normalization before comparing trees (as the existing round-trip
/// proptest does).
fn normalize(e: &Expr) -> Expr {
    mba_expr::visit::transform_bottom_up(e, &mut |n| match n {
        Expr::Unary(UnOp::Neg, inner) => match *inner {
            Expr::Const(c) => Expr::Const(-c),
            other => Expr::unary(UnOp::Neg, other),
        },
        other => other,
    })
}

fn roundtrips(e: &Expr) -> Result<(), TestCaseError> {
    let normalized = normalize(e);
    let printed = normalized.to_string();
    let reparsed: Expr = printed
        .parse()
        .map_err(|err| TestCaseError::fail(format!("`{printed}` does not parse: {err}")))?;
    prop_assert_eq!(&reparsed, &normalized, "printed `{}`", printed);
    Ok(())
}

// Exhaustive two-operator matrix, both association directions: 6 × 6 × 2
// deterministic shapes per case, expressed over random atoms so constants
// and variables both appear in every slot.
proptest! {
    #[test]
    fn every_binop_pair_roundtrips_both_nestings(
        a in arb_atom(),
        b in arb_atom(),
        c in arb_atom(),
    ) {
        for op1 in BINOPS {
            for op2 in BINOPS {
                let left = Expr::binary(op2, Expr::binary(op1, a.clone(), b.clone()), c.clone());
                roundtrips(&left)?;
                let right = Expr::binary(op2, a.clone(), Expr::binary(op1, b.clone(), c.clone()));
                roundtrips(&right)?;
            }
        }
    }

    /// Unary operators over every binary operator and vice versa:
    /// `~(a op b)`, `-(a op b)`, `(~a) op b`, `a op (-b)`.
    #[test]
    fn unary_binary_interactions_roundtrip(
        a in arb_atom(),
        b in arb_atom(),
        u in arb_unop(),
    ) {
        for op in BINOPS {
            roundtrips(&Expr::unary(u, Expr::binary(op, a.clone(), b.clone())))?;
            roundtrips(&Expr::binary(op, Expr::unary(u, a.clone()), b.clone()))?;
            roundtrips(&Expr::binary(op, a.clone(), Expr::unary(u, b.clone())))?;
        }
    }

    /// Stacked unaries (`~-x`, `-~x`, `~~x`, ...) round-trip at any
    /// depth. The parser folds `Neg(Const)` so the innermost leaf is a
    /// variable here.
    #[test]
    fn unary_towers_roundtrip(ops in prop::collection::vec(arb_unop(), 1..6)) {
        let mut e = Expr::var("x");
        for op in ops {
            e = Expr::unary(op, e);
        }
        roundtrips(&e)?;
    }

    /// Negative constants print as `-c` (unary precedence) and must
    /// re-parse into the folded `Const(-c)` in every operand position.
    #[test]
    fn negative_constants_in_every_position(c in 1i128..=64, op in arb_binop()) {
        let neg = Expr::Const(-c);
        roundtrips(&Expr::binary(op, neg.clone(), Expr::var("x")))?;
        roundtrips(&Expr::binary(op, Expr::var("x"), neg.clone()))?;
        roundtrips(&Expr::unary(UnOp::Not, neg))?;
    }

    /// Minimality: every parenthesis the printer emits is load-bearing.
    /// Removing any matched pair either changes the parsed tree or
    /// breaks the parse.
    #[test]
    fn printed_parentheses_are_all_necessary(
        a in arb_atom(),
        b in arb_atom(),
        c in arb_atom(),
    ) {
        for op1 in BINOPS {
            for op2 in BINOPS {
                let e = Expr::binary(op2, a.clone(), Expr::binary(op1, b.clone(), c.clone()));
                let printed = e.to_string();
                for (open, close) in paren_pairs(&printed) {
                    let mut stripped = String::with_capacity(printed.len());
                    for (i, ch) in printed.char_indices() {
                        if i != open && i != close {
                            stripped.push(ch);
                        }
                    }
                    let changed = match stripped.parse::<Expr>() {
                        Ok(other) => other != e,
                        Err(_) => true,
                    };
                    prop_assert!(
                        changed,
                        "parens at {}..{} in `{}` are redundant",
                        open, close, printed
                    );
                }
            }
        }
    }
}

/// Matched parenthesis pairs (byte offsets) in `s`.
fn paren_pairs(s: &str) -> Vec<(usize, usize)> {
    let mut stack = Vec::new();
    let mut pairs = Vec::new();
    for (i, ch) in s.char_indices() {
        match ch {
            '(' => stack.push(i),
            ')' => pairs.push((stack.pop().expect("balanced parens"), i)),
            _ => {}
        }
    }
    assert!(stack.is_empty(), "balanced parens in `{s}`");
    pairs
}

/// Deterministic spot checks for each precedence boundary, readable as
/// a table of the grammar.
#[test]
fn precedence_table_spot_checks() {
    for (input, expected) in [
        // Or < Xor < And < Add < Mul.
        ("x | y ^ z", "x|y^z"),
        ("(x | y) ^ z", "(x|y)^z"),
        ("x ^ y & z", "x^y&z"),
        ("(x ^ y) & z", "(x^y)&z"),
        ("x & y + z", "x&y+z"),
        ("(x & y) + z", "(x&y)+z"),
        ("x + y * z", "x+y*z"),
        ("(x + y) * z", "(x+y)*z"),
        // Sub is left-associative; the right operand needs parens.
        ("x - y - z", "x-y-z"),
        ("x - (y - z)", "x-(y-z)"),
        ("x - (y + z)", "x-(y+z)"),
        // Unary binds tighter than any binop.
        ("~x & y", "~x&y"),
        ("~(x & y)", "~(x&y)"),
        ("-x * y", "-x*y"),
        ("-(x * y)", "-(x*y)"),
    ] {
        let e: Expr = input.parse().unwrap();
        assert_eq!(e.to_string(), expected, "for input `{input}`");
        let reparsed: Expr = e.to_string().parse().unwrap();
        assert_eq!(reparsed, e, "round-trip of `{input}`");
    }
}
