//! The MBA expression tree and its basic structural operations.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// An interned variable name.
///
/// Cloning an `Ident` is a reference-count bump; comparisons fall back to
/// string comparison so identifiers created independently still compare
/// equal by name.
///
/// ```
/// use mba_expr::Ident;
/// let a = Ident::new("x");
/// let b: Ident = "x".into();
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ident(Arc<str>);

impl Ident {
    /// Creates an identifier from a name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Ident(Arc::from(name.as_ref()))
    }

    /// Returns the identifier's name.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Ident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Ident {
    fn from(s: &str) -> Self {
        Ident::new(s)
    }
}

impl From<String> for Ident {
    fn from(s: String) -> Self {
        Ident(Arc::from(s))
    }
}

impl AsRef<str> for Ident {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl Serialize for Ident {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.0)
    }
}

impl<'de> Deserialize<'de> for Ident {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        if s.is_empty() {
            return Err(D::Error::custom("identifier must be non-empty"));
        }
        Ok(Ident::from(s))
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation `-e` (two's complement).
    Neg,
    /// Bitwise complement `~e`.
    Not,
}

/// Binary operators. The set is exactly the paper's
/// `∧ ∨ ⊕ + − ×` (plus unary `¬`/`-` in [`UnOp`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Wrapping addition `+`.
    Add,
    /// Wrapping subtraction `-`.
    Sub,
    /// Wrapping multiplication `*`.
    Mul,
    /// Bitwise conjunction `&`.
    And,
    /// Bitwise disjunction `|`.
    Or,
    /// Bitwise exclusive or `^`.
    Xor,
}

impl BinOp {
    /// The operator's domain: arithmetic or bitwise.
    pub fn domain(self) -> OpDomain {
        match self {
            BinOp::Add | BinOp::Sub | BinOp::Mul => OpDomain::Arithmetic,
            BinOp::And | BinOp::Or | BinOp::Xor => OpDomain::Bitwise,
        }
    }

    /// The surface-syntax token for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
        }
    }

    /// Whether `a op b == b op a` for all `a`, `b`.
    pub fn is_commutative(self) -> bool {
        !matches!(self, BinOp::Sub)
    }
}

impl UnOp {
    /// The operator's domain: arithmetic or bitwise.
    pub fn domain(self) -> OpDomain {
        match self {
            UnOp::Neg => OpDomain::Arithmetic,
            UnOp::Not => OpDomain::Bitwise,
        }
    }

    /// The surface-syntax token for the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Neg => "-",
            UnOp::Not => "~",
        }
    }
}

/// Whether an operator belongs to the arithmetic world (`+ − ×` and unary
/// minus) or the bitwise world (`∧ ∨ ⊕ ¬`). The paper's *MBA alternation*
/// metric counts operators whose operands come from the opposite domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OpDomain {
    /// `+`, `-`, `*`, unary `-`.
    Arithmetic,
    /// `&`, `|`, `^`, `~`.
    Bitwise,
}

/// A Mixed-Bitwise-Arithmetic expression.
///
/// Semantics are over `w`-bit two's-complement bit-vectors (the integer
/// modular ring `Z/2^w`); see [`Expr::eval`]. Constants are stored as
/// `i128` and reduced modulo `2^w` at evaluation time, so the same tree can
/// be interpreted at any width — exactly the property MBA identities rely
/// on.
///
/// The tree can be built by parsing (`"x+2*y".parse()`), with the
/// constructor helpers ([`Expr::var`], [`Expr::constant`], ...), or with the
/// overloaded Rust operators:
///
/// ```
/// use mba_expr::Expr;
/// let (x, y) = (Expr::var("x"), Expr::var("y"));
/// let e = (x.clone() | y.clone()) + (!x | y.clone()) - !Expr::var("x");
/// assert_eq!(e.to_string(), "(x|y)+(~x|y)-~x");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// An integer constant, interpreted modulo `2^w`.
    Const(i128),
    /// A free variable.
    Var(Ident),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Creates a variable expression.
    pub fn var(name: impl Into<Ident>) -> Self {
        Expr::Var(name.into())
    }

    /// Creates a constant expression.
    pub fn constant(value: i128) -> Self {
        Expr::Const(value)
    }

    /// The constant zero.
    pub fn zero() -> Self {
        Expr::Const(0)
    }

    /// The constant one.
    pub fn one() -> Self {
        Expr::Const(1)
    }

    /// The all-ones constant `-1`, the bitwise tautology of §2.1.
    pub fn minus_one() -> Self {
        Expr::Const(-1)
    }

    /// Builds `op(lhs, rhs)`.
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Self {
        Expr::Binary(op, Box::new(lhs), Box::new(rhs))
    }

    /// Builds `op(e)`.
    pub fn unary(op: UnOp, e: Expr) -> Self {
        Expr::Unary(op, Box::new(e))
    }

    /// Returns the set of variables occurring in the expression, sorted by
    /// name.
    ///
    /// ```
    /// use mba_expr::Expr;
    /// let e: Expr = "y + (x & ~y)".parse().unwrap();
    /// let vars: Vec<_> = e.vars().into_iter().map(|v| v.to_string()).collect();
    /// assert_eq!(vars, ["x", "y"]);
    /// ```
    pub fn vars(&self) -> BTreeSet<Ident> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Ident>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Unary(_, e) => e.collect_vars(out),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Number of AST nodes.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, e) => 1 + e.node_count(),
            Expr::Binary(_, a, b) => 1 + a.node_count() + b.node_count(),
        }
    }

    /// Tree depth (a leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Unary(_, e) => 1 + e.depth(),
            Expr::Binary(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// The domain of the expression's top operator, or `None` for leaves
    /// (variables and constants belong to both worlds).
    pub fn top_domain(&self) -> Option<OpDomain> {
        match self {
            Expr::Const(_) | Expr::Var(_) => None,
            Expr::Unary(op, _) => Some(op.domain()),
            Expr::Binary(op, ..) => Some(op.domain()),
        }
    }

    /// Whether the expression is *purely bitwise*: built only from
    /// variables and `& | ^ ~`. Pure bitwise expressions are the `e_i` of
    /// Definition 1, and the only expressions with well-defined truth
    /// tables.
    ///
    /// Constants `0` and `-1` are allowed (they are bit-uniform: every bit
    /// position holds the same boolean), other constants are not.
    pub fn is_pure_bitwise(&self) -> bool {
        match self {
            Expr::Const(c) => *c == 0 || *c == -1,
            Expr::Var(_) => true,
            Expr::Unary(UnOp::Not, e) => e.is_pure_bitwise(),
            // Arithmetic negation is not bitwise — except over a literal
            // chain that folds to a bit-uniform constant (0 or −1), so
            // the classification agrees with the parsed form of the
            // printout (the parser folds `-CONST`).
            Expr::Unary(UnOp::Neg, _) => {
                matches!(fold_negated_literal(self), Some(0) | Some(-1))
            }
            Expr::Binary(op, a, b) => {
                op.domain() == OpDomain::Bitwise && a.is_pure_bitwise() && b.is_pure_bitwise()
            }
        }
    }

    /// Whether the expression is *bitwise with constants*: built only
    /// from variables, arbitrary integer constants and `& | ^ ~`. These
    /// are the factors of the *semi-linear* class — per-bit boolean
    /// functions whose constant operands vary across bit positions.
    /// [`Expr::is_pure_bitwise`] is the special case where every
    /// constant is bit-uniform (`0` or `-1`).
    pub fn is_bitwise_with_consts(&self) -> bool {
        match self {
            Expr::Const(_) => true,
            Expr::Var(_) => true,
            Expr::Unary(UnOp::Not, e) => e.is_bitwise_with_consts(),
            // As in `is_pure_bitwise`, arithmetic negation only counts
            // over a literal chain, where it denotes a constant — here
            // of any value, not just the bit-uniform ones.
            Expr::Unary(UnOp::Neg, _) => fold_negated_literal(self).is_some(),
            Expr::Binary(op, a, b) => {
                op.domain() == OpDomain::Bitwise
                    && a.is_bitwise_with_consts()
                    && b.is_bitwise_with_consts()
            }
        }
    }

    /// Folds the expression to a literal constant if it is a `Const`
    /// under a (possibly empty) chain of unary minuses.
    pub fn as_literal(&self) -> Option<i128> {
        fold_negated_literal(self)
    }

    /// Substitutes every occurrence of variable `name` with `replacement`.
    pub fn substitute(&self, name: &Ident, replacement: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(v) => {
                if v == name {
                    replacement.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Unary(op, e) => Expr::unary(*op, e.substitute(name, replacement)),
            Expr::Binary(op, a, b) => Expr::binary(
                *op,
                a.substitute(name, replacement),
                b.substitute(name, replacement),
            ),
        }
    }

    /// Replaces every subtree structurally equal to `target` with
    /// `replacement`. Returns the rewritten tree and the number of
    /// replacements performed.
    pub fn replace_subexpr(&self, target: &Expr, replacement: &Expr) -> (Expr, usize) {
        if self == target {
            return (replacement.clone(), 1);
        }
        match self {
            Expr::Const(_) | Expr::Var(_) => (self.clone(), 0),
            Expr::Unary(op, e) => {
                let (e2, n) = e.replace_subexpr(target, replacement);
                (Expr::unary(*op, e2), n)
            }
            Expr::Binary(op, a, b) => {
                let (a2, n1) = a.replace_subexpr(target, replacement);
                let (b2, n2) = b.replace_subexpr(target, replacement);
                (Expr::binary(*op, a2, b2), n1 + n2)
            }
        }
    }

    /// Returns the sub-expressions in post-order (children before parents;
    /// the expression itself is last).
    pub fn subexprs(&self) -> Vec<&Expr> {
        let mut out = Vec::with_capacity(self.node_count());
        self.collect_postorder(&mut out);
        out
    }

    fn collect_postorder<'a>(&'a self, out: &mut Vec<&'a Expr>) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Unary(_, e) => e.collect_postorder(out),
            Expr::Binary(_, a, b) => {
                a.collect_postorder(out);
                b.collect_postorder(out);
            }
        }
        out.push(self);
    }
}

/// Folds a chain of unary minuses over a literal constant; `None` for
/// anything else.
fn fold_negated_literal(e: &Expr) -> Option<i128> {
    match e {
        Expr::Const(c) => Some(*c),
        Expr::Unary(UnOp::Neg, inner) => fold_negated_literal(inner).map(|c| -c),
        _ => None,
    }
}

impl Default for Expr {
    /// The zero expression.
    fn default() -> Self {
        Expr::zero()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ident_equality_is_by_name() {
        assert_eq!(Ident::new("x"), Ident::from("x".to_string()));
        assert_ne!(Ident::new("x"), Ident::new("y"));
        assert_eq!(Ident::new("abc").as_str(), "abc");
    }

    #[test]
    fn vars_are_sorted_and_deduplicated() {
        let e: Expr = "z + x*z + (x & y)".parse().unwrap();
        let names: Vec<_> = e.vars().into_iter().map(|v| v.to_string()).collect();
        assert_eq!(names, ["x", "y", "z"]);
    }

    #[test]
    fn node_count_and_depth() {
        let e: Expr = "x + y*z".parse().unwrap();
        assert_eq!(e.node_count(), 5);
        assert_eq!(e.depth(), 3);
        assert_eq!(Expr::var("x").depth(), 1);
    }

    #[test]
    fn pure_bitwise_detection() {
        let yes: Expr = "~(x & y) ^ (x | ~y)".parse().unwrap();
        assert!(yes.is_pure_bitwise());
        let no: Expr = "x & (y + 1)".parse().unwrap();
        assert!(!no.is_pure_bitwise());
        let neg: Expr = "-(x & y)".parse().unwrap();
        assert!(!neg.is_pure_bitwise());
        // 0 and -1 are bit-uniform constants, other constants are not.
        assert!("x & -1".parse::<Expr>().unwrap().is_pure_bitwise());
        assert!("x & 0".parse::<Expr>().unwrap().is_pure_bitwise());
        assert!(!"x & 3".parse::<Expr>().unwrap().is_pure_bitwise());
    }

    #[test]
    fn substitute_replaces_all_occurrences() {
        let e: Expr = "x + x*y".parse().unwrap();
        let t: Expr = "a - b".parse().unwrap();
        let got = e.substitute(&Ident::new("x"), &t);
        assert_eq!(got.to_string(), "a-b+(a-b)*y");
    }

    #[test]
    fn replace_subexpr_counts() {
        let e: Expr = "(x & y) + (x & y)*z".parse().unwrap();
        let target: Expr = "x & y".parse().unwrap();
        let (out, n) = e.replace_subexpr(&target, &Expr::var("t"));
        assert_eq!(n, 2);
        assert_eq!(out.to_string(), "t+t*z");
    }

    #[test]
    fn subexprs_postorder_ends_with_root() {
        let e: Expr = "x + y".parse().unwrap();
        let subs = e.subexprs();
        assert_eq!(subs.len(), 3);
        assert_eq!(subs.last().copied(), Some(&e));
    }

    #[test]
    fn top_domain() {
        assert_eq!(
            "x+y".parse::<Expr>().unwrap().top_domain(),
            Some(OpDomain::Arithmetic)
        );
        assert_eq!(
            "~x".parse::<Expr>().unwrap().top_domain(),
            Some(OpDomain::Bitwise)
        );
        assert_eq!(Expr::var("x").top_domain(), None);
    }
}
