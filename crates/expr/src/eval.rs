//! Evaluation of MBA expressions over `w`-bit two's-complement bit-vectors.

use std::collections::BTreeMap;
use std::fmt;

use crate::ast::{BinOp, Expr, Ident, UnOp};

/// Error returned by the strict evaluation entry points
/// ([`Expr::eval_checked`], [`crate::EvalProgram::bind`]) when an
/// expression mentions a variable the valuation does not bind.
///
/// The lenient [`Expr::eval`] reads unbound variables as 0, which is
/// the right default for constant folding (`pipeline.rs` evaluates
/// variable-free skeletons under an empty valuation) but silently makes
/// two *inequivalent* expressions agree when a variable is mistyped or
/// renamed — exactly the failure mode an equivalence oracle must not
/// have. Strict callers get this error instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundVariableError {
    name: Ident,
}

impl UnboundVariableError {
    /// The variable that was not bound.
    pub fn name(&self) -> &Ident {
        &self.name
    }
}

impl fmt::Display for UnboundVariableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unbound variable `{}`", self.name)
    }
}

impl std::error::Error for UnboundVariableError {}

/// Masks `value` to the low `width` bits.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 64.
///
/// ```
/// use mba_expr::mask;
/// assert_eq!(mask(0x1ff, 8), 0xff);
/// assert_eq!(mask(u64::MAX, 64), u64::MAX);
/// ```
pub fn mask(value: u64, width: u32) -> u64 {
    assert!((1..=64).contains(&width), "width must be in 1..=64");
    if width == 64 {
        value
    } else {
        value & ((1u64 << width) - 1)
    }
}

/// Reduces a (possibly negative) constant into the `w`-bit ring `Z/2^w`.
pub(crate) fn const_to_bits(c: i128, width: u32) -> u64 {
    mask(c as u64, width)
}

/// A variable assignment: a map from identifiers to `u64` values.
///
/// Values are masked to the evaluation width on use, so a valuation built
/// at one width can be reused at another.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Valuation {
    values: BTreeMap<Ident, u64>,
}

impl Valuation {
    /// Creates an empty valuation (all variables default to 0).
    pub fn new() -> Self {
        Valuation::default()
    }

    /// Builder-style insertion.
    ///
    /// ```
    /// use mba_expr::{Expr, Valuation};
    /// let v = Valuation::new().with("x", 3).with("y", 5);
    /// let e: Expr = "x*y".parse().unwrap();
    /// assert_eq!(e.eval(&v, 64), 15);
    /// ```
    #[must_use]
    pub fn with(mut self, name: impl Into<Ident>, value: u64) -> Self {
        self.values.insert(name.into(), value);
        self
    }

    /// Inserts a binding, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<Ident>, value: u64) -> Option<u64> {
        self.values.insert(name.into(), value)
    }

    /// Looks up a variable; unbound variables read as 0.
    pub fn get(&self, name: &Ident) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Strict lookup: unbound variables are an error instead of 0.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundVariableError`] when `name` has no binding.
    pub fn get_checked(&self, name: &Ident) -> Result<u64, UnboundVariableError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| UnboundVariableError { name: name.clone() })
    }

    /// Iterates over the bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&Ident, u64)> {
        self.values.iter().map(|(k, &v)| (k, v))
    }
}

impl FromIterator<(Ident, u64)> for Valuation {
    fn from_iter<I: IntoIterator<Item = (Ident, u64)>>(iter: I) -> Self {
        Valuation {
            values: iter.into_iter().collect(),
        }
    }
}

impl Extend<(Ident, u64)> for Valuation {
    fn extend<I: IntoIterator<Item = (Ident, u64)>>(&mut self, iter: I) {
        self.values.extend(iter);
    }
}

impl Expr {
    /// Evaluates the expression at `width` bits under `valuation`.
    ///
    /// All arithmetic wraps modulo `2^width` (the integer modular ring of
    /// §2.1); unbound variables read as 0. The result is masked to
    /// `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    ///
    /// ```
    /// use mba_expr::{Expr, Valuation};
    /// // Equation (2) from the paper: x|y == (x & ~y) + y.
    /// let lhs: Expr = "x | y".parse().unwrap();
    /// let rhs: Expr = "(x & ~y) + y".parse().unwrap();
    /// let v = Valuation::new().with("x", 0xbeef).with("y", 0x1234);
    /// assert_eq!(lhs.eval(&v, 16), rhs.eval(&v, 16));
    /// ```
    pub fn eval(&self, valuation: &Valuation, width: u32) -> u64 {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        mask(self.eval_wrapping(valuation, width), width)
    }

    /// Strict evaluation: like [`Expr::eval`], but an unbound variable
    /// is an error instead of silently reading 0.
    ///
    /// Use this wherever two expressions are *compared* by evaluation
    /// (equivalence oracles, differential tests): under the lenient
    /// default, a mistyped or renamed variable collapses to 0 on both
    /// sides and inequivalent expressions can agree on every sample.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundVariableError`] naming the first unbound
    /// variable encountered (post-order).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64.
    ///
    /// ```
    /// use mba_expr::{Expr, Valuation};
    /// let e: Expr = "x + y".parse().unwrap();
    /// let v = Valuation::new().with("x", 1);
    /// assert_eq!(e.eval(&v, 8), 1); // lenient: y reads 0
    /// assert!(e.eval_checked(&v, 8).is_err()); // strict: y is unbound
    /// ```
    pub fn eval_checked(
        &self,
        valuation: &Valuation,
        width: u32,
    ) -> Result<u64, UnboundVariableError> {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        Ok(mask(self.eval_wrapping_checked(valuation, width)?, width))
    }

    fn eval_wrapping_checked(
        &self,
        valuation: &Valuation,
        width: u32,
    ) -> Result<u64, UnboundVariableError> {
        Ok(match self {
            Expr::Const(c) => const_to_bits(*c, width),
            Expr::Var(v) => valuation.get_checked(v)?,
            Expr::Unary(op, e) => {
                let x = e.eval_wrapping_checked(valuation, width)?;
                match op {
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::Not => !x,
                }
            }
            Expr::Binary(op, a, b) => {
                let x = a.eval_wrapping_checked(valuation, width)?;
                let y = b.eval_wrapping_checked(valuation, width)?;
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                }
            }
        })
    }

    /// Evaluation without the final mask; intermediate ops wrap on u64 and
    /// are masked once at the top (correct because +, -, *, &, |, ^, ~ all
    /// commute with truncation).
    fn eval_wrapping(&self, valuation: &Valuation, width: u32) -> u64 {
        match self {
            Expr::Const(c) => const_to_bits(*c, width),
            Expr::Var(v) => valuation.get(v),
            Expr::Unary(op, e) => {
                let x = e.eval_wrapping(valuation, width);
                match op {
                    UnOp::Neg => x.wrapping_neg(),
                    UnOp::Not => !x,
                }
            }
            Expr::Binary(op, a, b) => {
                let x = a.eval_wrapping(valuation, width);
                let y = b.eval_wrapping(valuation, width);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(&str, u64)]) -> Valuation {
        pairs
            .iter()
            .map(|&(n, x)| (Ident::new(n), x))
            .collect()
    }

    #[test]
    #[should_panic(expected = "width must be in 1..=64")]
    fn zero_width_panics() {
        mask(1, 0);
    }

    #[test]
    fn constants_wrap_to_width() {
        let e = Expr::Const(-1);
        assert_eq!(e.eval(&Valuation::new(), 8), 0xff);
        assert_eq!(e.eval(&Valuation::new(), 64), u64::MAX);
        assert_eq!(Expr::Const(256).eval(&Valuation::new(), 8), 0);
    }

    #[test]
    fn unbound_variables_read_zero() {
        let e: Expr = "x + 1".parse().unwrap();
        assert_eq!(e.eval(&Valuation::new(), 32), 1);
    }

    #[test]
    fn checked_eval_rejects_unbound_variables() {
        let e: Expr = "x + y".parse().unwrap();
        let err = e.eval_checked(&v(&[("x", 3)]), 32).unwrap_err();
        assert_eq!(err.name().as_str(), "y");
        assert!(err.to_string().contains("unbound variable `y`"));
        // Fully bound valuations agree with the lenient evaluator.
        let full = v(&[("x", 3), ("y", 9)]);
        assert_eq!(e.eval_checked(&full, 32).unwrap(), e.eval(&full, 32));
    }

    #[test]
    fn checked_lookup() {
        let val = v(&[("x", 5)]);
        assert_eq!(val.get_checked(&Ident::new("x")), Ok(5));
        assert!(val.get_checked(&Ident::new("z")).is_err());
    }

    #[test]
    fn arithmetic_wraps() {
        let e: Expr = "x + y".parse().unwrap();
        assert_eq!(e.eval(&v(&[("x", 0xff), ("y", 1)]), 8), 0);
        let e: Expr = "x * y".parse().unwrap();
        assert_eq!(e.eval(&v(&[("x", 16), ("y", 16)]), 8), 0);
        let e: Expr = "x - y".parse().unwrap();
        assert_eq!(e.eval(&v(&[("x", 0), ("y", 1)]), 8), 0xff);
    }

    #[test]
    fn hakmem_identities_hold() {
        // x|y == (x & ~y) + y   and   x^y == (x|y) - (x&y)
        let cases = [
            ("x | y", "(x & ~y) + y"),
            ("x ^ y", "(x | y) - (x & y)"),
            ("x + y", "(x | y) + (~x | y) - ~x"),
            ("x + y", "(x ^ y) + 2*y - 2*(~x & y)"),
            ("x - y", "(x ^ y) + 2*(x | ~y) + 2"),
        ];
        for (lhs, rhs) in cases {
            let l: Expr = lhs.parse().unwrap();
            let r: Expr = rhs.parse().unwrap();
            for (x, y) in [(0, 0), (1, 0xffff_ffff), (12345, 67890), (u64::MAX, 7)] {
                let val = v(&[("x", x), ("y", y)]);
                for w in [1, 8, 32, 64] {
                    assert_eq!(l.eval(&val, w), r.eval(&val, w), "{lhs} vs {rhs} at w={w}");
                }
            }
        }
    }

    #[test]
    fn figure1_identity_holds_at_64_bits() {
        let lhs: Expr = "x*y".parse().unwrap();
        let rhs: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
        for (x, y) in [(3, 5), (0xdead_beef, 0x1234_5678), (u64::MAX, u64::MAX)] {
            let val = v(&[("x", x), ("y", y)]);
            assert_eq!(lhs.eval(&val, 64), rhs.eval(&val, 64));
        }
    }

    #[test]
    fn valuation_accessors() {
        let mut val = Valuation::new();
        assert_eq!(val.set("x", 5), None);
        assert_eq!(val.set("x", 7), Some(5));
        assert_eq!(val.get(&Ident::new("x")), 7);
        assert_eq!(val.iter().count(), 1);
        val.extend([(Ident::new("y"), 1)]);
        assert_eq!(val.iter().count(), 2);
    }
}
