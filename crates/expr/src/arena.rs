//! Hash-consed expression arena: a single flat node store in which
//! structurally identical subtrees intern to the same [`NodeId`].
//!
//! The `Box`-tree [`Expr`] stays the parse/print boundary — corpus
//! files, goldens, and the wire protocol never see node ids — but the
//! pipeline's hot interior (skeletonization, classification, tape
//! compilation, truth tables, signature caching) can run over ids
//! instead:
//!
//! * **O(1) structural equality** — two subtrees are equal iff their
//!   ids are equal, because interning dedups every node on insert;
//! * **free cross-expression CSE** — the `x & y` inside one input is
//!   the *same node* as the `x & y` inside the next, so caches keyed
//!   by id hit across expressions without re-hashing subtrees;
//! * **precomputed per-node metadata** — structural hash, variable-set
//!   bitmask, node count, pure-bitwise/bitwise-with-consts flags and
//!   folded negated-literal value are computed once at intern time and
//!   read back in O(1), replicating the [`Expr`] predicates bit for
//!   bit;
//! * **cache-friendly layout** — nodes are `Copy` values in one `Vec`,
//!   children are 4-byte indices, and a post-order over ids touches a
//!   contiguous store instead of chasing heap boxes.
//!
//! # Id lifetime and generations
//!
//! A [`NodeId`] is meaningful only for the arena that produced it and
//! only until that arena is [`ExprArena::clear`]ed. Every arena carries
//! a process-unique [`ExprArena::uid`] and a monotonically increasing
//! [`ExprArena::generation`] (bumped by `clear`); caches that key on
//! ids must key on `(uid, generation, id)` so a cleared-and-refilled
//! arena can never satisfy a stale probe. See DESIGN.md §14.
//!
//! Interning is lossless: `arena.extract(arena.intern(&e)) == e` for
//! every expression, including arithmetic-negation chains over
//! literals (`-0`, `- -1`) which fold for *classification* but are
//! preserved node for node in the store.

use std::collections::{BTreeSet, HashMap};
use std::mem;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{RwLock, RwLockReadGuard};

use crate::ast::{BinOp, Expr, Ident, OpDomain, UnOp};
use crate::classify::MbaClass;

/// Index of an interned node in an [`ExprArena`].
///
/// Ids are dense (the first interned node is id 0) and totally ordered
/// by insertion. Equality of ids is equality of subtrees *within one
/// arena generation*; ids from different arenas or generations are not
/// comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// The id's index into the arena's node store.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One interned node. Children are ids, so a `Node` is a small `Copy`
/// value regardless of subtree size; variables hold an index into the
/// arena's identifier table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// An integer constant, interpreted modulo `2^w` like
    /// [`Expr::Const`].
    Const(i128),
    /// A variable, as an index into the arena's identifier table.
    Var(u32),
    /// A unary operation over an interned child.
    Unary(UnOp, NodeId),
    /// A binary operation over interned children.
    Binary(BinOp, NodeId, NodeId),
}

/// `meta.flags` bit: the subtree is pure bitwise
/// ([`Expr::is_pure_bitwise`]).
const FLAG_PURE_BITWISE: u8 = 1 << 0;
/// `meta.flags` bit: the subtree is bitwise-with-constants
/// ([`Expr::is_bitwise_with_consts`]).
const FLAG_BITWISE_WITH_CONSTS: u8 = 1 << 1;
/// `meta.flags` bit: the subtree mentions a variable whose identifier
/// index does not fit the 64-bit `var_mask`; variable queries fall back
/// to a walk.
const FLAG_VAR_OVERFLOW: u8 = 1 << 2;

/// Per-node metadata, computed once when the node is interned.
#[derive(Debug, Clone, Copy)]
struct NodeMeta {
    /// Structural hash of the subtree (stable within a process run).
    hash: u64,
    /// Tree node count of the subtree — shared children counted once
    /// per occurrence, so it equals `extract(id).node_count()`
    /// (saturating).
    node_count: u64,
    /// Bit `i` set iff identifier index `i` occurs in the subtree;
    /// meaningless when `FLAG_VAR_OVERFLOW` is set.
    var_mask: u64,
    /// `FLAG_*` bits.
    flags: u8,
    /// The folded literal value when the subtree is a constant under a
    /// (possibly empty) chain of unary minuses ([`Expr::as_literal`]).
    literal: Option<i128>,
}

/// The mutable interior of an arena, behind one `RwLock`.
pub(crate) struct ArenaInner {
    nodes: Vec<Node>,
    meta: Vec<NodeMeta>,
    /// Identifier table; `Node::Var(i)` names `idents[i]`.
    idents: Vec<Ident>,
    ident_index: HashMap<Ident, u32>,
    /// Hash-consing table: node → existing id.
    interner: HashMap<Node, u32>,
}

/// splitmix64 finalizer: the cheap, well-mixed hash the probe and
/// oracle layers already use.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Combines a node tag with up to two child/payload hashes.
fn combine(tag: u64, a: u64, b: u64) -> u64 {
    mix64(
        tag.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ a.wrapping_mul(0xff51_afd7_ed55_8ccd)
            ^ b.rotate_left(17),
    )
}

impl ArenaInner {
    fn new() -> ArenaInner {
        ArenaInner {
            nodes: Vec::new(),
            meta: Vec::new(),
            idents: Vec::new(),
            ident_index: HashMap::new(),
            interner: HashMap::new(),
        }
    }

    pub(crate) fn node(&self, id: NodeId) -> Node {
        self.nodes[id.index()]
    }

    fn meta(&self, id: NodeId) -> &NodeMeta {
        &self.meta[id.index()]
    }

    /// The identifier behind a `Node::Var` index.
    pub(crate) fn ident(&self, i: u32) -> &Ident {
        &self.idents[i as usize]
    }

    /// Precomputed tree node count (see [`NodeMeta::node_count`]).
    pub(crate) fn node_count_of(&self, id: NodeId) -> usize {
        usize::try_from(self.meta(id).node_count).unwrap_or(usize::MAX)
    }

    /// Interns one node, returning the existing id when the exact node
    /// is already in the store.
    fn intern_node(&mut self, node: Node, hits: &AtomicU64) -> NodeId {
        if let Some(&idx) = self.interner.get(&node) {
            hits.fetch_add(1, Ordering::Relaxed);
            return NodeId(idx);
        }
        let idx = u32::try_from(self.nodes.len()).expect("arena holds at most 2^32 nodes");
        let meta = self.compute_meta(&node);
        self.nodes.push(node);
        self.meta.push(meta);
        self.interner.insert(node, idx);
        NodeId(idx)
    }

    fn ident_id(&mut self, ident: &Ident) -> u32 {
        if let Some(&i) = self.ident_index.get(ident) {
            return i;
        }
        let i = u32::try_from(self.idents.len()).expect("at most 2^32 identifiers");
        self.idents.push(ident.clone());
        self.ident_index.insert(ident.clone(), i);
        i
    }

    /// Metadata for a node whose children (if any) are already
    /// interned, replicating the `Expr` predicates exactly:
    /// `is_pure_bitwise`, `is_bitwise_with_consts`, `as_literal`,
    /// `node_count`, `vars`.
    fn compute_meta(&self, node: &Node) -> NodeMeta {
        match *node {
            Node::Const(c) => NodeMeta {
                hash: combine(0x10, mix64(c as u64), mix64((c >> 64) as u64)),
                node_count: 1,
                var_mask: 0,
                flags: FLAG_BITWISE_WITH_CONSTS
                    | if c == 0 || c == -1 { FLAG_PURE_BITWISE } else { 0 },
                literal: Some(c),
            },
            Node::Var(i) => NodeMeta {
                hash: combine(0x20, mix64(i as u64), 0),
                node_count: 1,
                var_mask: if i < 64 { 1 << i } else { 0 },
                flags: FLAG_PURE_BITWISE
                    | FLAG_BITWISE_WITH_CONSTS
                    | if i >= 64 { FLAG_VAR_OVERFLOW } else { 0 },
                literal: None,
            },
            Node::Unary(op, a) => {
                let child = *self.meta(a);
                // `-literal` folds through the chain like
                // `fold_negated_literal`; `~` never folds.
                let literal = match op {
                    UnOp::Neg => child.literal.map(i128::wrapping_neg),
                    UnOp::Not => None,
                };
                let pure = match op {
                    UnOp::Not => child.flags & FLAG_PURE_BITWISE != 0,
                    UnOp::Neg => matches!(literal, Some(0) | Some(-1)),
                };
                let bwc = match op {
                    UnOp::Not => child.flags & FLAG_BITWISE_WITH_CONSTS != 0,
                    UnOp::Neg => literal.is_some(),
                };
                NodeMeta {
                    hash: combine(0x30 + op as u64, child.hash, 0),
                    node_count: child.node_count.saturating_add(1),
                    var_mask: child.var_mask,
                    flags: (child.flags & FLAG_VAR_OVERFLOW)
                        | if pure { FLAG_PURE_BITWISE } else { 0 }
                        | if bwc { FLAG_BITWISE_WITH_CONSTS } else { 0 },
                    literal,
                }
            }
            Node::Binary(op, a, b) => {
                let (la, lb) = (*self.meta(a), *self.meta(b));
                let bitwise = op.domain() == OpDomain::Bitwise;
                let both = la.flags & lb.flags;
                let pure = bitwise && both & FLAG_PURE_BITWISE != 0;
                let bwc = bitwise && both & FLAG_BITWISE_WITH_CONSTS != 0;
                NodeMeta {
                    hash: combine(0x40 + op as u64, la.hash, lb.hash),
                    node_count: la.node_count.saturating_add(lb.node_count).saturating_add(1),
                    var_mask: la.var_mask | lb.var_mask,
                    flags: ((la.flags | lb.flags) & FLAG_VAR_OVERFLOW)
                        | if pure { FLAG_PURE_BITWISE } else { 0 }
                        | if bwc { FLAG_BITWISE_WITH_CONSTS } else { 0 },
                    literal: None,
                }
            }
        }
    }

    fn intern_expr(&mut self, e: &Expr, hits: &AtomicU64) -> NodeId {
        let node = match e {
            Expr::Const(c) => Node::Const(*c),
            Expr::Var(v) => Node::Var(self.ident_id(v)),
            Expr::Unary(op, a) => Node::Unary(*op, self.intern_expr(a, hits)),
            Expr::Binary(op, a, b) => {
                let a = self.intern_expr(a, hits);
                let b = self.intern_expr(b, hits);
                Node::Binary(*op, a, b)
            }
        };
        self.intern_node(node, hits)
    }

    fn extract(&self, id: NodeId) -> Expr {
        match self.node(id) {
            Node::Const(c) => Expr::Const(c),
            Node::Var(i) => Expr::Var(self.idents[i as usize].clone()),
            Node::Unary(op, a) => Expr::unary(op, self.extract(a)),
            Node::Binary(op, a, b) => Expr::binary(op, self.extract(a), self.extract(b)),
        }
    }

    /// Variables of the subtree, sorted by name — same order as
    /// [`Expr::vars`].
    pub(crate) fn vars_of(&self, id: NodeId) -> Vec<Ident> {
        let meta = self.meta(id);
        if meta.flags & FLAG_VAR_OVERFLOW == 0 {
            let mut mask = meta.var_mask;
            let mut out = Vec::with_capacity(mask.count_ones() as usize);
            while mask != 0 {
                let i = mask.trailing_zeros();
                out.push(self.idents[i as usize].clone());
                mask &= mask - 1;
            }
            // Mask order is identifier *insertion* order; callers need
            // name order.
            out.sort_unstable();
            out
        } else {
            let mut set = BTreeSet::new();
            self.collect_vars(id, &mut set);
            set.into_iter().collect()
        }
    }

    fn collect_vars(&self, id: NodeId, out: &mut BTreeSet<Ident>) {
        match self.node(id) {
            Node::Const(_) => {}
            Node::Var(i) => {
                out.insert(self.idents[i as usize].clone());
            }
            Node::Unary(_, a) => self.collect_vars(a, out),
            Node::Binary(_, a, b) => {
                self.collect_vars(a, out);
                self.collect_vars(b, out);
            }
        }
    }

    /// Id-level port of `classify::collect_sum`: flattens `+`, `-` and
    /// unary `-` into signed addends.
    fn collect_sum(&self, id: NodeId, sign: i128, out: &mut Vec<(i128, NodeId)>) {
        match self.node(id) {
            Node::Binary(BinOp::Add, a, b) => {
                self.collect_sum(a, sign, out);
                self.collect_sum(b, sign, out);
            }
            Node::Binary(BinOp::Sub, a, b) => {
                self.collect_sum(a, sign, out);
                self.collect_sum(b, -sign, out);
            }
            Node::Unary(UnOp::Neg, a) => self.collect_sum(a, -sign, out),
            _ => out.push((sign, id)),
        }
    }

    /// Id-level port of `classify::collect_factors`, with the same
    /// wrapping coefficient arithmetic.
    fn collect_factors(&self, id: NodeId, coefficient: &mut i128, factors: &mut Vec<NodeId>) {
        match self.node(id) {
            Node::Binary(BinOp::Mul, a, b) => {
                self.collect_factors(a, coefficient, factors);
                self.collect_factors(b, coefficient, factors);
            }
            Node::Unary(UnOp::Neg, a) => {
                *coefficient = coefficient.wrapping_neg();
                self.collect_factors(a, coefficient, factors);
            }
            Node::Const(c) => *coefficient = coefficient.wrapping_mul(c),
            _ => factors.push(id),
        }
    }

    /// Id-level port of [`crate::classify::classify`]; must agree with
    /// the `Expr` classifier on every input (pinned by the arena
    /// differential proptests).
    pub(crate) fn classify(&self, id: NodeId) -> MbaClass {
        let mut terms = Vec::new();
        self.collect_sum(id, 1, &mut terms);
        let mut linear = true;
        let mut semi = false;
        for (sign, term) in terms {
            let mut coefficient = sign;
            let mut factors = Vec::new();
            self.collect_factors(term, &mut coefficient, &mut factors);
            if factors.len() > 1 {
                if !factors
                    .iter()
                    .all(|&f| self.meta(f).flags & FLAG_PURE_BITWISE != 0)
                {
                    return MbaClass::NonPolynomial;
                }
                linear = false;
            } else if let [factor] = factors.as_slice() {
                let flags = self.meta(*factor).flags;
                if flags & FLAG_PURE_BITWISE != 0 {
                    // Plain Definition 1 factor.
                } else if flags & FLAG_BITWISE_WITH_CONSTS != 0 {
                    semi = true;
                } else {
                    return MbaClass::NonPolynomial;
                }
            }
        }
        match (linear, semi) {
            (true, false) => MbaClass::Linear,
            (true, true) => MbaClass::SemiLinear,
            (false, true) => MbaClass::NonPolynomial,
            (false, false) => MbaClass::Polynomial,
        }
    }

    /// Resident bytes of the store: node + metadata + interner entry
    /// per node, identifier table strings, map entries.
    fn bytes(&self) -> u64 {
        let per_node = mem::size_of::<Node>()
            + mem::size_of::<NodeMeta>()
            + mem::size_of::<(Node, u32)>();
        let ident_bytes: usize = self
            .idents
            .iter()
            .map(|i| i.as_str().len() + 2 * mem::size_of::<Ident>() + mem::size_of::<u32>())
            .sum();
        (self.nodes.len() * per_node + ident_bytes) as u64
    }
}

/// Snapshot of an arena's size and interning counters
/// ([`ExprArena::stats`]); published over mba-obs as
/// `arena.{nodes,interned_hits,bytes}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Interned nodes currently in the store.
    pub nodes: u64,
    /// Distinct identifiers in the store.
    pub idents: u64,
    /// Lifetime count of intern lookups answered by an existing node
    /// (monotonic; survives [`ExprArena::clear`]).
    pub interned_hits: u64,
    /// Approximate resident bytes of the node store, metadata, and
    /// identifier table.
    pub bytes: u64,
    /// Current generation ([`ExprArena::generation`]).
    pub generation: u64,
}

/// Arena uids are process-unique so id-keyed caches can tell two
/// arenas apart even across drop/recreate.
static NEXT_ARENA_UID: AtomicU64 = AtomicU64::new(1);

/// A hash-consed expression arena; see the [module docs](self).
///
/// All methods take `&self`: the store is behind a `RwLock`, so an
/// arena can be shared across worker threads (`Arc<ExprArena>`) with
/// concurrent interning and read-back.
///
/// ```
/// use mba_expr::{Expr, ExprArena};
///
/// let arena = ExprArena::new();
/// let e: Expr = "(x & y) + (x & y)".parse().unwrap();
/// let id = arena.intern(&e);
/// // Lossless round-trip…
/// assert_eq!(arena.extract(id), e);
/// // …and the repeated `x & y` interned to one node: 7 tree nodes,
/// // 4 distinct.
/// assert_eq!(arena.node_count(id), 7);
/// assert_eq!(arena.len(), 4);
/// ```
pub struct ExprArena {
    inner: RwLock<ArenaInner>,
    uid: u64,
    generation: AtomicU64,
    interned_hits: AtomicU64,
}

impl std::fmt::Debug for ExprArena {
    /// Summarizes via [`ExprArena::stats`] — the node store itself can
    /// run to millions of entries and sits behind the lock.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ExprArena")
            .field("uid", &self.uid)
            .field("nodes", &stats.nodes)
            .field("idents", &stats.idents)
            .field("interned_hits", &stats.interned_hits)
            .field("generation", &stats.generation)
            .finish_non_exhaustive()
    }
}

impl ExprArena {
    /// Creates an empty arena with a fresh process-unique uid.
    pub fn new() -> ExprArena {
        ExprArena {
            inner: RwLock::new(ArenaInner::new()),
            uid: NEXT_ARENA_UID.fetch_add(1, Ordering::Relaxed),
            generation: AtomicU64::new(0),
            interned_hits: AtomicU64::new(0),
        }
    }

    /// The arena's process-unique identity, for id-keyed caches.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The current generation. Bumped by [`ExprArena::clear`]; an id is
    /// only valid for the generation that interned it, and caches must
    /// key on `(uid, generation, id)`.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Empties the store and bumps the generation, invalidating every
    /// outstanding [`NodeId`]. The lifetime `interned_hits` counter is
    /// preserved.
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        *inner = ArenaInner::new();
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.inner.read().nodes.len()
    }

    /// Whether the arena holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns an expression, structure-preserving: every subtree gets
    /// an id, structurally identical subtrees (within and across calls)
    /// get the *same* id.
    pub fn intern(&self, e: &Expr) -> NodeId {
        self.inner.write().intern_expr(e, &self.interned_hits)
    }

    /// Rebuilds the `Box`-tree expression for an id (the lossless
    /// inverse of [`ExprArena::intern`]).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this arena's current
    /// generation.
    pub fn extract(&self, id: NodeId) -> Expr {
        self.inner.read().extract(id)
    }

    /// The interned node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not from this arena's current generation.
    pub fn node(&self, id: NodeId) -> Node {
        self.inner.read().node(id)
    }

    /// Interns a constant node.
    pub fn mk_const(&self, value: i128) -> NodeId {
        self.inner
            .write()
            .intern_node(Node::Const(value), &self.interned_hits)
    }

    /// Interns a variable node.
    pub fn mk_var(&self, name: &Ident) -> NodeId {
        let mut inner = self.inner.write();
        let ident = inner.ident_id(name);
        inner.intern_node(Node::Var(ident), &self.interned_hits)
    }

    /// Interns `op(a)` over an already-interned child.
    pub fn mk_unary(&self, op: UnOp, a: NodeId) -> NodeId {
        let mut inner = self.inner.write();
        debug_assert!(a.index() < inner.nodes.len(), "child id from this arena");
        inner.intern_node(Node::Unary(op, a), &self.interned_hits)
    }

    /// Interns `op(a, b)` over already-interned children.
    pub fn mk_binary(&self, op: BinOp, a: NodeId, b: NodeId) -> NodeId {
        let mut inner = self.inner.write();
        debug_assert!(
            a.index() < inner.nodes.len() && b.index() < inner.nodes.len(),
            "child ids from this arena"
        );
        inner.intern_node(Node::Binary(op, a, b), &self.interned_hits)
    }

    /// Tree node count of the subtree (shared nodes counted once per
    /// occurrence) — agrees with [`Expr::node_count`] on the extracted
    /// tree.
    pub fn node_count(&self, id: NodeId) -> usize {
        usize::try_from(self.inner.read().meta(id).node_count).unwrap_or(usize::MAX)
    }

    /// Precomputed structural hash of the subtree. Stable within a
    /// process run; equal ids always have equal hashes.
    pub fn structural_hash(&self, id: NodeId) -> u64 {
        self.inner.read().meta(id).hash
    }

    /// O(1) [`Expr::is_pure_bitwise`] from the precomputed flags.
    pub fn is_pure_bitwise(&self, id: NodeId) -> bool {
        self.inner.read().meta(id).flags & FLAG_PURE_BITWISE != 0
    }

    /// O(1) [`Expr::is_bitwise_with_consts`] from the precomputed
    /// flags.
    pub fn is_bitwise_with_consts(&self, id: NodeId) -> bool {
        self.inner.read().meta(id).flags & FLAG_BITWISE_WITH_CONSTS != 0
    }

    /// O(1) [`Expr::as_literal`]: the folded constant when the subtree
    /// is a literal under a chain of unary minuses.
    pub fn as_literal(&self, id: NodeId) -> Option<i128> {
        self.inner.read().meta(id).literal
    }

    /// Variables of the subtree, sorted by name (same order as
    /// [`Expr::vars`]). O(vars) via the precomputed bitmask for up to
    /// 64 distinct identifiers, O(subtree) beyond.
    pub fn vars(&self, id: NodeId) -> Vec<Ident> {
        self.inner.read().vars_of(id)
    }

    /// Id-level classification; agrees with [`Expr::mba_class`] on the
    /// extracted tree.
    pub fn classify(&self, id: NodeId) -> MbaClass {
        self.inner.read().classify(id)
    }

    /// Snapshot of size and interning counters.
    pub fn stats(&self) -> ArenaStats {
        let inner = self.inner.read();
        ArenaStats {
            nodes: inner.nodes.len() as u64,
            idents: inner.idents.len() as u64,
            interned_hits: self.interned_hits.load(Ordering::Relaxed),
            bytes: inner.bytes(),
            generation: self.generation(),
        }
    }

    /// Read access for in-crate id consumers
    /// ([`crate::program::EvalProgram::compile_arena`]) that need one
    /// consistent view across many node reads.
    pub(crate) fn read_inner(&self) -> RwLockReadGuard<'_, ArenaInner> {
        self.inner.read()
    }
}

impl Default for ExprArena {
    fn default() -> Self {
        ExprArena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(src: &str) -> Expr {
        src.parse().expect("test expression parses")
    }

    #[test]
    fn intern_extract_round_trips() {
        let arena = ExprArena::new();
        for src in [
            "x",
            "42",
            "-7",
            "- -1",
            "-0",
            "x + 2*y + (x&y) - 3*(x^y) + 4",
            "~(x & y) ^ (x | ~y)",
            "(x - y) | z",
        ] {
            let e = p(src);
            let id = arena.intern(&e);
            assert_eq!(arena.extract(id), e, "round-trip of `{src}`");
        }
    }

    #[test]
    fn equal_subtrees_share_ids() {
        let arena = ExprArena::new();
        let a = arena.intern(&p("(x & y) + z"));
        let b = arena.intern(&p("z * (x & y)"));
        assert_ne!(a, b);
        // The shared `x & y` subtree interned once.
        let xy = arena.intern(&p("x & y"));
        match (arena.node(a), arena.node(b)) {
            (Node::Binary(BinOp::Add, l, _), Node::Binary(BinOp::Mul, _, r)) => {
                assert_eq!(l, xy);
                assert_eq!(r, xy);
            }
            other => panic!("unexpected roots: {other:?}"),
        }
    }

    #[test]
    fn id_equality_is_structural_equality() {
        let arena = ExprArena::new();
        let a = arena.intern(&p("2*(x|y) - (~x&y)"));
        let b = arena.intern(&p("2*(x|y) - (~x&y)"));
        let c = arena.intern(&p("2*(x|y) - (~x&y) - 0"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(arena.structural_hash(a), arena.structural_hash(b));
    }

    #[test]
    fn interned_hits_count_dedup() {
        let arena = ExprArena::new();
        arena.intern(&p("x & y"));
        assert_eq!(arena.stats().interned_hits, 0);
        arena.intern(&p("x & y"));
        // x, y, and the & node all hit.
        assert_eq!(arena.stats().interned_hits, 3);
        assert_eq!(arena.stats().nodes, 3);
    }

    #[test]
    fn metadata_matches_expr_predicates() {
        let arena = ExprArena::new();
        for src in [
            "x & -1",
            "x & 0",
            "x & 3",
            "-(x & y)",
            "~(x & y) ^ (x | ~y)",
            "x & (y + 1)",
            "- -1",
            "-0",
            "-5",
            "x + 2*y + (x&y)",
        ] {
            let e = p(src);
            let id = arena.intern(&e);
            assert_eq!(arena.is_pure_bitwise(id), e.is_pure_bitwise(), "`{src}`");
            assert_eq!(
                arena.is_bitwise_with_consts(id),
                e.is_bitwise_with_consts(),
                "`{src}`"
            );
            assert_eq!(arena.as_literal(id), e.as_literal(), "`{src}`");
            assert_eq!(arena.node_count(id), e.node_count(), "`{src}`");
            let vars: Vec<Ident> = e.vars().into_iter().collect();
            assert_eq!(arena.vars(id), vars, "`{src}`");
        }
    }

    #[test]
    fn classify_matches_expr_classifier() {
        let arena = ExprArena::new();
        for src in [
            "x + 2*y + (x&y) - 3*(x^y) + 4",
            "x*y + 2*(x&y) + 3*(x&~y)*(x|y) - 5",
            "(x - y) | z",
            "x & 3",
            "(x | 5) - y",
            "(x & 3) * y",
            "~(x + 1)",
            "42",
            "-x",
            "-(3*(x&y))",
        ] {
            let e = p(src);
            let id = arena.intern(&e);
            assert_eq!(arena.classify(id), e.mba_class(), "`{src}`");
        }
    }

    #[test]
    fn mk_constructors_agree_with_intern() {
        let arena = ExprArena::new();
        let x = arena.mk_var(&Ident::new("x"));
        let y = arena.mk_var(&Ident::new("y"));
        let and = arena.mk_binary(BinOp::And, x, y);
        let not = arena.mk_unary(UnOp::Not, and);
        let zero = arena.mk_const(0);
        assert_eq!(and, arena.intern(&p("x & y")));
        assert_eq!(not, arena.intern(&p("~(x & y)")));
        assert_eq!(zero, arena.intern(&p("0")));
    }

    #[test]
    fn clear_bumps_generation_and_empties() {
        let arena = ExprArena::new();
        let before = arena.generation();
        arena.intern(&p("x + y"));
        assert!(!arena.is_empty());
        arena.clear();
        assert!(arena.is_empty());
        assert_eq!(arena.generation(), before + 1);
        // Ids are dense again from zero in the new generation.
        let id = arena.intern(&p("q"));
        assert_eq!(id.index(), 0);
    }

    #[test]
    fn uids_are_process_unique() {
        let a = ExprArena::new();
        let b = ExprArena::new();
        assert_ne!(a.uid(), b.uid());
    }

    #[test]
    fn stats_report_bytes_and_sizes() {
        let arena = ExprArena::new();
        arena.intern(&p("x + 2*y + (x&y)"));
        let stats = arena.stats();
        assert_eq!(stats.nodes, arena.len() as u64);
        assert_eq!(stats.idents, 2);
        assert!(stats.bytes > 0);
    }
}
