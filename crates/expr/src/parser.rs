//! Recursive-descent parser for the concrete MBA syntax.
//!
//! The grammar follows the Python-style precedence used by the MBA corpora
//! in the literature (Eyrolles' datasets, the Syntia samples, and the
//! paper's own Figure 1 are all written against Python's `BitVec`
//! operators):
//!
//! ```text
//! or     := xor  ( '|' xor  )*          -- loosest
//! xor    := and  ( '^' and  )*
//! and    := sum  ( '&' sum  )*
//! sum    := prod ( ('+'|'-') prod )*
//! prod   := unary ( '*' unary )*
//! unary  := ('-' | '~')* atom           -- tightest
//! atom   := NUMBER | IDENT | '(' or ')'
//! ```
//!
//! so `x & y + 1` parses as `x & (y + 1)`, exactly as it would in Python.
//! Numbers may be decimal or hexadecimal (`0x1f`). Identifiers are
//! `[A-Za-z_][A-Za-z0-9_]*`.

use std::fmt;
use std::str::FromStr;

use crate::ast::{BinOp, Expr, UnOp};

/// An error produced when parsing an MBA expression.
///
/// Carries the byte offset of the offending token and a human-readable
/// description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseExprError {
    position: usize,
    message: String,
}

impl ParseExprError {
    fn new(position: usize, message: impl Into<String>) -> Self {
        ParseExprError {
            position,
            message: message.into(),
        }
    }

    /// Byte offset in the input where the error occurred.
    pub fn position(&self) -> usize {
        self.position
    }
}

impl fmt::Display for ParseExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for ParseExprError {}

/// Parses an MBA expression from its textual form.
///
/// This is the function behind [`Expr`]'s [`FromStr`] impl; prefer
/// `input.parse::<Expr>()` in application code.
///
/// # Errors
///
/// Returns [`ParseExprError`] on empty input, unbalanced parentheses,
/// malformed numbers, or trailing garbage.
///
/// ```
/// use mba_expr::parse;
/// let e = parse("(x ^ y) + 2*(x & y)")?;
/// assert_eq!(e.to_string(), "(x^y)+2*(x&y)");
/// assert!(parse("x +").is_err());
/// # Ok::<(), mba_expr::ParseExprError>(())
/// ```
pub fn parse(input: &str) -> Result<Expr, ParseExprError> {
    let mut p = Parser::new(input);
    let e = p.parse_or()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(ParseExprError::new(
            p.pos,
            format!("unexpected character `{}`", p.peek_char()),
        ));
    }
    Ok(e)
}

impl FromStr for Expr {
    type Err = ParseExprError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        parse(s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_char(&self) -> char {
        self.bytes.get(self.pos).map(|&b| b as char).unwrap_or('?')
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')) {
            self.pos += 1;
        }
    }

    /// Consumes `c` if it is the next non-whitespace byte.
    fn eat(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_or(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_xor()?;
        while self.eat(b'|') {
            let rhs = self.parse_xor()?;
            lhs = Expr::binary(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_and()?;
        while self.eat(b'^') {
            let rhs = self.parse_and()?;
            lhs = Expr::binary(BinOp::Xor, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_sum()?;
        while self.eat(b'&') {
            let rhs = self.parse_sum()?;
            lhs = Expr::binary(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_sum(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_prod()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'+') => {
                    self.pos += 1;
                    let rhs = self.parse_prod()?;
                    lhs = Expr::binary(BinOp::Add, lhs, rhs);
                }
                Some(b'-') => {
                    self.pos += 1;
                    let rhs = self.parse_prod()?;
                    lhs = Expr::binary(BinOp::Sub, lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_prod(&mut self) -> Result<Expr, ParseExprError> {
        let mut lhs = self.parse_unary()?;
        while self.eat(b'*') {
            let rhs = self.parse_unary()?;
            lhs = Expr::binary(BinOp::Mul, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, ParseExprError> {
        self.skip_ws();
        match self.peek() {
            Some(b'-') => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                // Fold `-CONST` into a negative literal so that
                // round-tripping preserves the tree shape.
                Ok(match inner {
                    Expr::Const(c) => Expr::Const(-c),
                    other => Expr::unary(UnOp::Neg, other),
                })
            }
            Some(b'~') => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                Ok(Expr::unary(UnOp::Not, inner))
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, ParseExprError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if !self.eat(b')') {
                    return Err(ParseExprError::new(self.pos, "expected `)`"));
                }
                Ok(inner)
            }
            Some(b) if b.is_ascii_digit() => self.parse_number(),
            Some(b) if b.is_ascii_alphabetic() || b == b'_' => self.parse_ident(),
            Some(_) => Err(ParseExprError::new(
                self.pos,
                format!("expected expression, found `{}`", self.peek_char()),
            )),
            None => Err(ParseExprError::new(self.pos, "unexpected end of input")),
        }
    }

    fn parse_number(&mut self) -> Result<Expr, ParseExprError> {
        let start = self.pos;
        let radix = if self.bytes[self.pos..].starts_with(b"0x")
            || self.bytes[self.pos..].starts_with(b"0X")
        {
            self.pos += 2;
            16
        } else {
            10
        };
        let digits_start = self.pos;
        while let Some(b) = self.peek() {
            if (b as char).is_digit(radix) || (radix == 16 && b.is_ascii_hexdigit()) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == digits_start {
            return Err(ParseExprError::new(start, "malformed number literal"));
        }
        let text = std::str::from_utf8(&self.bytes[digits_start..self.pos]).expect("ascii");
        let value = i128::from_str_radix(text, radix)
            .map_err(|e| ParseExprError::new(start, format!("number out of range: {e}")))?;
        Ok(Expr::Const(value))
    }

    fn parse_ident(&mut self) -> Result<Expr, ParseExprError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let name = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        Ok(Expr::var(name))
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::Expr;

    fn roundtrip(src: &str) -> String {
        src.parse::<Expr>().unwrap().to_string()
    }

    #[test]
    fn parses_figure_1_example() {
        let e: Expr = "(x&~y)*(~x&y) + (x&y)*(x|y)".parse().unwrap();
        assert_eq!(e.to_string(), "(x&~y)*(~x&y)+(x&y)*(x|y)");
    }

    #[test]
    fn python_precedence_and_binds_looser_than_plus() {
        let e: Expr = "x & y + 1".parse().unwrap();
        assert_eq!(e, "x & (y + 1)".parse().unwrap());
    }

    #[test]
    fn precedence_chain_or_xor_and() {
        let e: Expr = "a | b ^ c & d".parse().unwrap();
        assert_eq!(e, "a | (b ^ (c & d))".parse().unwrap());
    }

    #[test]
    fn left_associativity_of_sub() {
        let e: Expr = "a - b - c".parse().unwrap();
        assert_eq!(e, "(a - b) - c".parse().unwrap());
    }

    #[test]
    fn unary_stacking() {
        assert_eq!(roundtrip("~~x"), "~~x");
        assert_eq!(roundtrip("-~x"), "-~x");
        assert_eq!(roundtrip("~-x"), "~-x");
    }

    #[test]
    fn negative_literal_folding() {
        assert_eq!("-5".parse::<Expr>().unwrap(), Expr::Const(-5));
        assert_eq!("--5".parse::<Expr>().unwrap(), Expr::Const(5));
    }

    #[test]
    fn hex_literals() {
        assert_eq!("0xff".parse::<Expr>().unwrap(), Expr::Const(255));
        assert_eq!("0X10".parse::<Expr>().unwrap(), Expr::Const(16));
    }

    #[test]
    fn identifiers_with_underscores_and_digits() {
        assert_eq!(roundtrip("foo_1 + _bar"), "foo_1+_bar");
    }

    #[test]
    fn error_on_trailing_garbage() {
        let err = "x + y )".parse::<Expr>().unwrap_err();
        assert!(err.to_string().contains(")"));
    }

    #[test]
    fn error_on_empty_input() {
        assert!("".parse::<Expr>().is_err());
        assert!("   ".parse::<Expr>().is_err());
    }

    #[test]
    fn error_on_unbalanced_parens() {
        assert!("(x + y".parse::<Expr>().is_err());
        assert!("x + (y *".parse::<Expr>().is_err());
    }

    #[test]
    fn error_positions_point_at_offender() {
        let err = "x @ y".parse::<Expr>().unwrap_err();
        assert_eq!(err.position(), 2);
    }

    #[test]
    fn whitespace_is_insignificant() {
        assert_eq!(
            " x\t+\n y ".parse::<Expr>().unwrap(),
            "x+y".parse::<Expr>().unwrap()
        );
    }
}
