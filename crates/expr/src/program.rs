//! Compiled batch evaluation: an [`Expr`] flattened once into a
//! post-order instruction tape, then run many times without touching
//! the tree.
//!
//! The signature pipeline's hottest loop evaluates the same expression
//! at thousands of points: `2^t` boolean rows for a truth table, and
//! dozens of corner/random valuations per width in the verify oracles.
//! Walking the AST per point pays pointer-chasing, match dispatch, and
//! a `BTreeMap` lookup per variable *per point*. [`EvalProgram`]
//! hoists all of that out of the loop:
//!
//! * **compile once** — one post-order walk records the instruction
//!   tape and resolves every variable to a dense slot index;
//! * **bit-parallel boolean evaluation** ([`EvalProgram::eval_bits`]) —
//!   each variable is bound to a 64-lane pattern word and one tape pass
//!   computes 64 truth-table rows at width 1. Width-1 arithmetic is
//!   carry-free (`+`/`-` are `^`, `*` is `&`, unary `-` is the
//!   identity), so every MBA operator maps to one word-wide bitwise op;
//! * **SoA chunked batch evaluation** ([`EvalProgram::eval_batch`]) —
//!   one tape pass evaluates a whole column of full-width valuations,
//!   chunked so the operand stack stays cache-resident.
//!
//! Binding variables from [`Valuation`]s is *strict*
//! ([`EvalProgram::bind`] errors on unbound variables) — batch
//! evaluation exists to compare expressions, where the lenient
//! read-as-0 default can make inequivalent expressions agree.
//!
//! The module keeps process-global monotonic counters
//! ([`engine_stats`]) so observability layers can report tape compiles
//! and rows-per-pass without threading a registry through every
//! call site.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::arena::{ExprArena, Node, NodeId};
use crate::ast::{BinOp, Expr, Ident, UnOp};
use crate::eval::{mask, UnboundVariableError, Valuation};

/// Lanes per chunk of a batch evaluation pass: small enough that
/// `max_stack` chunk-wide slots stay in L1, large enough to amortize
/// the tape dispatch and keep the per-op inner loops vectorizable.
const CHUNK: usize = 64;

/// `u64` lanes of one wide bit-parallel pass
/// ([`EvalProgram::eval_bits_wide`]): 4 × 64 = 256 boolean rows per
/// pass. W = 4 keeps the per-op inner loops at one 256-bit vector op
/// after autovectorization while the operand stack stays in L1.
pub const WIDE_LANES: usize = 4;

/// One instruction of the flat post-order tape (a stack machine:
/// leaves push, unary ops rewrite the top, binary ops pop one and
/// rewrite the new top).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// Push a constant (reduced to the evaluation width at run time).
    Const(i128),
    /// Push variable slot `n`.
    Var(u32),
    /// Apply a unary operator to the top of stack.
    Unary(UnOp),
    /// Pop the right operand, combine into the new top of stack.
    Binary(BinOp),
}

// Process-global engine counters; `Relaxed` — telemetry must never
// synchronize the code it observes (same rule as `mba-obs`).
static TAPE_COMPILES: AtomicU64 = AtomicU64::new(0);
static BIT_PASSES: AtomicU64 = AtomicU64::new(0);
static BIT_ROWS: AtomicU64 = AtomicU64::new(0);
static WIDE_PASSES: AtomicU64 = AtomicU64::new(0);
static BATCH_PASSES: AtomicU64 = AtomicU64::new(0);
static BATCH_ROWS: AtomicU64 = AtomicU64::new(0);

/// Monotonic process-wide counters of the batch evaluation engine,
/// captured at one instant by [`engine_stats`]. Counters never reset;
/// report deltas between snapshots for per-run telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Expressions compiled to tapes.
    pub tape_compiles: u64,
    /// Bit-parallel tape passes (each computes 64 boolean rows).
    pub bit_parallel_passes: u64,
    /// Boolean rows computed bit-parallel (64 × passes).
    pub bit_parallel_rows: u64,
    /// Wide bit-parallel tape passes (each computes
    /// `64 × WIDE_LANES = 256` boolean rows).
    pub wide_passes: u64,
    /// SoA batch tape passes (one per chunk of lanes).
    pub batch_passes: u64,
    /// Full-width lanes evaluated by batch passes.
    pub batch_rows: u64,
}

/// Reads the process-global [`EngineStats`] counters.
pub fn engine_stats() -> EngineStats {
    EngineStats {
        tape_compiles: TAPE_COMPILES.load(Ordering::Relaxed),
        bit_parallel_passes: BIT_PASSES.load(Ordering::Relaxed),
        bit_parallel_rows: BIT_ROWS.load(Ordering::Relaxed),
        wide_passes: WIDE_PASSES.load(Ordering::Relaxed),
        batch_passes: BATCH_PASSES.load(Ordering::Relaxed),
        batch_rows: BATCH_ROWS.load(Ordering::Relaxed),
    }
}

/// An [`Expr`] compiled to a flat post-order instruction tape for
/// repeated evaluation.
///
/// ```
/// use mba_expr::{EvalProgram, Expr, Valuation};
///
/// let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
/// let program = EvalProgram::compile(&e);
/// let points = [
///     Valuation::new().with("x", 13).with("y", 7),
///     Valuation::new().with("x", 250).with("y", 9),
/// ];
/// // One tape pass evaluates every valuation; results are per-lane.
/// assert_eq!(program.eval_valuations(&points, 8).unwrap(), [20, 3]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalProgram {
    ops: Vec<Op>,
    /// Variable slots in name order (the order of [`Expr::vars`]);
    /// `Op::Var(n)` reads slot `n`.
    vars: Vec<Ident>,
    /// Peak operand-stack depth of one tape run.
    max_stack: usize,
}

impl EvalProgram {
    /// Compiles `e` into a tape. One tree walk; every later evaluation
    /// is a linear scan of the tape.
    pub fn compile(e: &Expr) -> EvalProgram {
        let vars: Vec<Ident> = e.vars().into_iter().collect();
        let mut program = EvalProgram {
            ops: Vec::with_capacity(e.node_count()),
            vars,
            max_stack: 0,
        };
        let mut depth = 0usize;
        program.emit(e, &mut depth);
        debug_assert_eq!(depth, 1, "a well-formed tape leaves one result");
        TAPE_COMPILES.fetch_add(1, Ordering::Relaxed);
        program
    }

    /// Compiles an interned subtree into a tape **byte-identical** to
    /// `EvalProgram::compile(&arena.extract(id))`: same post-order,
    /// same name-ordered variable slots, same peak stack. Shared
    /// subtrees in the id-DAG are duplicated into the tape exactly as
    /// the extracted tree would duplicate them, so every downstream
    /// consumer (truth tables, corner signatures, batch oracles) sees
    /// identical results whichever representation compiled the tape.
    pub fn compile_arena(arena: &ExprArena, id: NodeId) -> EvalProgram {
        let inner = arena.read_inner();
        let mut program = EvalProgram {
            ops: Vec::with_capacity(inner.node_count_of(id)),
            vars: inner.vars_of(id),
            max_stack: 0,
        };
        let mut depth = 0usize;
        program.emit_arena(&inner, id, &mut depth);
        debug_assert_eq!(depth, 1, "a well-formed tape leaves one result");
        TAPE_COMPILES.fetch_add(1, Ordering::Relaxed);
        program
    }

    fn emit_arena(&mut self, inner: &crate::arena::ArenaInner, id: NodeId, depth: &mut usize) {
        match inner.node(id) {
            Node::Const(c) => {
                self.ops.push(Op::Const(c));
                *depth += 1;
            }
            Node::Var(i) => {
                let slot = self
                    .vars
                    .binary_search(inner.ident(i))
                    .expect("compile_arena collected every variable");
                self.ops.push(Op::Var(slot as u32));
                *depth += 1;
            }
            Node::Unary(op, a) => {
                self.emit_arena(inner, a, depth);
                self.ops.push(Op::Unary(op));
            }
            Node::Binary(op, a, b) => {
                self.emit_arena(inner, a, depth);
                self.emit_arena(inner, b, depth);
                self.ops.push(Op::Binary(op));
                *depth -= 1;
            }
        }
        self.max_stack = self.max_stack.max(*depth);
    }

    fn emit(&mut self, e: &Expr, depth: &mut usize) {
        match e {
            Expr::Const(c) => {
                self.ops.push(Op::Const(*c));
                *depth += 1;
            }
            Expr::Var(v) => {
                let slot = self
                    .vars
                    .binary_search(v)
                    .expect("compile collected every variable");
                self.ops.push(Op::Var(slot as u32));
                *depth += 1;
            }
            Expr::Unary(op, a) => {
                self.emit(a, depth);
                self.ops.push(Op::Unary(*op));
            }
            Expr::Binary(op, a, b) => {
                self.emit(a, depth);
                self.emit(b, depth);
                self.ops.push(Op::Binary(*op));
                *depth -= 1;
            }
        }
        self.max_stack = self.max_stack.max(*depth);
    }

    /// The variable slots, in name order. Slot `n` of every binding API
    /// corresponds to `vars()[n]`.
    pub fn vars(&self) -> &[Ident] {
        &self.vars
    }

    /// Number of tape instructions (equals the expression's node count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the tape is empty (never true for a compiled program).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// **Bit-parallel boolean evaluation**: one tape pass computes the
    /// expression at width 1 on 64 independent lanes.
    ///
    /// `var_words[n]` packs 64 boolean samples of variable `vars()[n]`,
    /// one per bit; bit `i` of the result is the width-1 value of the
    /// expression on lane `i`. Width-1 modular arithmetic is carry-free,
    /// so the lanes never interact: `+` and `-` are XOR, `*` is AND,
    /// unary `-` is the identity, and a constant broadcasts its low bit.
    ///
    /// # Panics
    ///
    /// Panics if `var_words.len() != self.vars().len()`.
    pub fn eval_bits(&self, var_words: &[u64]) -> u64 {
        assert_eq!(
            var_words.len(),
            self.vars.len(),
            "one pattern word per variable slot"
        );
        let mut stack = vec![0u64; self.max_stack];
        let mut top = 0usize; // next free slot
        for op in &self.ops {
            match op {
                Op::Const(c) => {
                    stack[top] = if c & 1 == 1 { u64::MAX } else { 0 };
                    top += 1;
                }
                Op::Var(n) => {
                    stack[top] = var_words[*n as usize];
                    top += 1;
                }
                Op::Unary(op) => {
                    let x = stack[top - 1];
                    stack[top - 1] = match op {
                        UnOp::Neg => x, // -x ≡ x (mod 2)
                        UnOp::Not => !x,
                    };
                }
                Op::Binary(op) => {
                    let y = stack[top - 1];
                    let x = stack[top - 2];
                    top -= 1;
                    stack[top - 1] = match op {
                        BinOp::Add | BinOp::Sub | BinOp::Xor => x ^ y,
                        BinOp::Mul | BinOp::And => x & y,
                        BinOp::Or => x | y,
                    };
                }
            }
        }
        BIT_PASSES.fetch_add(1, Ordering::Relaxed);
        BIT_ROWS.fetch_add(64, Ordering::Relaxed);
        stack[0]
    }

    /// **Wide bit-parallel boolean evaluation**: one tape pass computes
    /// the expression at width 1 on `64 × WIDE_LANES = 256` independent
    /// lanes.
    ///
    /// Semantically this is [`EvalProgram::eval_bits`] run
    /// [`WIDE_LANES`] times — `var_blocks[n][w]` packs samples
    /// `64·w .. 64·w + 64` of variable `vars()[n]`, and word `w` of the
    /// result equals `eval_bits` of the `w`-th column of words — but
    /// one pass pays the tape dispatch once per block instead of once
    /// per word, and the fixed-size per-op inner loops autovectorize
    /// into full-register SIMD ops. This is the workhorse of the
    /// enumerative synthesis tier, which screens thousands of candidate
    /// truth tables per target.
    ///
    /// # Panics
    ///
    /// Panics if `var_blocks.len() != self.vars().len()`.
    pub fn eval_bits_wide(&self, var_blocks: &[[u64; WIDE_LANES]]) -> [u64; WIDE_LANES] {
        assert_eq!(
            var_blocks.len(),
            self.vars.len(),
            "one pattern block per variable slot"
        );
        let mut stack = vec![[0u64; WIDE_LANES]; self.max_stack];
        let mut top = 0usize; // next free slot
        for op in &self.ops {
            match op {
                Op::Const(c) => {
                    let v = if c & 1 == 1 { u64::MAX } else { 0 };
                    stack[top] = [v; WIDE_LANES];
                    top += 1;
                }
                Op::Var(n) => {
                    stack[top] = var_blocks[*n as usize];
                    top += 1;
                }
                Op::Unary(op) => {
                    let x = &mut stack[top - 1];
                    match op {
                        UnOp::Neg => {} // -x ≡ x (mod 2)
                        UnOp::Not => x.iter_mut().for_each(|w| *w = !*w),
                    }
                }
                Op::Binary(op) => {
                    let y = stack[top - 1];
                    top -= 1;
                    let x = &mut stack[top - 1];
                    match op {
                        BinOp::Add | BinOp::Sub | BinOp::Xor => {
                            for w in 0..WIDE_LANES {
                                x[w] ^= y[w];
                            }
                        }
                        BinOp::Mul | BinOp::And => {
                            for w in 0..WIDE_LANES {
                                x[w] &= y[w];
                            }
                        }
                        BinOp::Or => {
                            for w in 0..WIDE_LANES {
                                x[w] |= y[w];
                            }
                        }
                    }
                }
            }
        }
        WIDE_PASSES.fetch_add(1, Ordering::Relaxed);
        BIT_ROWS.fetch_add(64 * WIDE_LANES as u64, Ordering::Relaxed);
        stack[0]
    }

    /// **SoA chunked batch evaluation**: evaluates the expression on
    /// `lanes` full-width points per tape pass.
    ///
    /// `columns[n]` holds the value of variable `vars()[n]` on every
    /// lane (structure-of-arrays layout); the result is one `u64` per
    /// lane, masked to `width`. Lanes are processed in cache-sized
    /// chunks, each chunk sharing one pass over the tape, so the
    /// per-node cost (dispatch, variable lookup) is paid once per chunk
    /// instead of once per point.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`, `columns.len()` differs
    /// from `self.vars().len()`, or any column's length differs from
    /// `lanes`.
    pub fn eval_batch(&self, lanes: usize, columns: &[Vec<u64>], width: u32) -> Vec<u64> {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        assert_eq!(
            columns.len(),
            self.vars.len(),
            "one column per variable slot"
        );
        for (slot, column) in columns.iter().enumerate() {
            assert_eq!(
                column.len(),
                lanes,
                "column for `{}` must have one value per lane",
                self.vars[slot]
            );
        }
        let mut out = Vec::with_capacity(lanes);
        // Intermediate ops wrap on u64 and the result is masked once at
        // the end — identical to `Expr::eval` (truncation commutes with
        // every MBA operator).
        let mut stack = vec![0u64; self.max_stack * CHUNK];
        for base in (0..lanes).step_by(CHUNK) {
            let n = CHUNK.min(lanes - base);
            let mut top = 0usize;
            for op in &self.ops {
                match op {
                    Op::Const(c) => {
                        let v = *c as u64; // masked with the final result
                        stack[top * CHUNK..top * CHUNK + n].fill(v);
                        top += 1;
                    }
                    Op::Var(slot) => {
                        let column = &columns[*slot as usize][base..base + n];
                        stack[top * CHUNK..top * CHUNK + n].copy_from_slice(column);
                        top += 1;
                    }
                    Op::Unary(op) => {
                        let x = &mut stack[(top - 1) * CHUNK..(top - 1) * CHUNK + n];
                        match op {
                            UnOp::Neg => x.iter_mut().for_each(|v| *v = v.wrapping_neg()),
                            UnOp::Not => x.iter_mut().for_each(|v| *v = !*v),
                        }
                    }
                    Op::Binary(op) => {
                        let (xs, ys) = stack.split_at_mut((top - 1) * CHUNK);
                        let x = &mut xs[(top - 2) * CHUNK..(top - 2) * CHUNK + n];
                        let y = &ys[..n];
                        match op {
                            BinOp::Add => binop(x, y, u64::wrapping_add),
                            BinOp::Sub => binop(x, y, u64::wrapping_sub),
                            BinOp::Mul => binop(x, y, u64::wrapping_mul),
                            BinOp::And => binop(x, y, |a, b| a & b),
                            BinOp::Or => binop(x, y, |a, b| a | b),
                            BinOp::Xor => binop(x, y, |a, b| a ^ b),
                        }
                        top -= 1;
                    }
                }
            }
            out.extend(stack[..n].iter().map(|&v| mask(v, width)));
            BATCH_PASSES.fetch_add(1, Ordering::Relaxed);
        }
        BATCH_ROWS.fetch_add(lanes as u64, Ordering::Relaxed);
        out
    }

    /// Binds the program's variables from `valuations` into SoA columns
    /// for [`EvalProgram::eval_batch`], **strictly**: a valuation that
    /// does not bind every program variable is an error, never a silent
    /// 0 (see [`UnboundVariableError`]).
    ///
    /// # Errors
    ///
    /// Returns the first unbound variable found.
    pub fn bind(&self, valuations: &[Valuation]) -> Result<Vec<Vec<u64>>, UnboundVariableError> {
        let mut columns = Vec::with_capacity(self.vars.len());
        for var in &self.vars {
            let mut column = Vec::with_capacity(valuations.len());
            for v in valuations {
                column.push(v.get_checked(var)?);
            }
            columns.push(column);
        }
        Ok(columns)
    }

    /// [`EvalProgram::bind`] followed by [`EvalProgram::eval_batch`]:
    /// one result per valuation, masked to `width`.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundVariableError`] when any valuation misses a
    /// program variable.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=64`.
    pub fn eval_valuations(
        &self,
        valuations: &[Valuation],
        width: u32,
    ) -> Result<Vec<u64>, UnboundVariableError> {
        let columns = self.bind(valuations)?;
        Ok(self.eval_batch(valuations.len(), &columns, width))
    }
}

#[inline]
fn binop(x: &mut [u64], y: &[u64], f: impl Fn(u64, u64) -> u64) {
    for (a, b) in x.iter_mut().zip(y) {
        *a = f(*a, *b);
    }
}

/// The 64-row pattern word of row-index bit `p` for block `block`
/// (rows `64·block .. 64·block + 64`): bit `i` of the result is
/// `((64·block + i) >> p) & 1`. This is how truth-table extraction
/// binds each variable for [`EvalProgram::eval_bits`] — variable bits
/// with period `< 64` are fixed alternating masks, wider ones are
/// constant within a block.
pub fn row_bit_pattern(p: u32, block: usize) -> u64 {
    /// `MAGIC[p]` has bit `i` set iff `(i >> p) & 1 == 1`.
    const MAGIC: [u64; 6] = [
        0xaaaa_aaaa_aaaa_aaaa,
        0xcccc_cccc_cccc_cccc,
        0xf0f0_f0f0_f0f0_f0f0,
        0xff00_ff00_ff00_ff00,
        0xffff_0000_ffff_0000,
        0xffff_ffff_0000_0000,
    ];
    if p < 6 {
        MAGIC[p as usize]
    } else if (block as u64 * 64) >> p & 1 == 1 {
        u64::MAX
    } else {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(pairs: &[(&str, u64)]) -> Valuation {
        pairs.iter().map(|&(n, x)| (Ident::new(n), x)).collect()
    }

    #[test]
    fn compile_resolves_slots_in_name_order() {
        let e: Expr = "z + (a & b) * z".parse().unwrap();
        let p = EvalProgram::compile(&e);
        let names: Vec<&str> = p.vars().iter().map(Ident::as_str).collect();
        assert_eq!(names, ["a", "b", "z"]);
        assert_eq!(p.len(), e.node_count());
        assert!(!p.is_empty());
    }

    #[test]
    fn batch_matches_scalar_eval() {
        let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
        let p = EvalProgram::compile(&e);
        let points: Vec<Valuation> = [(0u64, 0u64), (13, 7), (255, 1), (u64::MAX, 42)]
            .iter()
            .map(|&(x, y)| v(&[("x", x), ("y", y)]))
            .collect();
        for width in [1, 7, 8, 63, 64] {
            let batch = p.eval_valuations(&points, width).unwrap();
            let scalar: Vec<u64> = points.iter().map(|pt| e.eval(pt, width)).collect();
            assert_eq!(batch, scalar, "width {width}");
        }
    }

    #[test]
    fn batch_crosses_chunk_boundaries() {
        let e: Expr = "x * x + 1".parse().unwrap();
        let p = EvalProgram::compile(&e);
        let lanes = CHUNK * 2 + 17;
        let columns = vec![(0..lanes as u64).collect::<Vec<u64>>()];
        let got = p.eval_batch(lanes, &columns, 32);
        for (i, &r) in got.iter().enumerate() {
            let i = i as u64;
            assert_eq!(r, mask(i.wrapping_mul(i).wrapping_add(1), 32), "lane {i}");
        }
    }

    #[test]
    fn strict_binding_rejects_unbound_variables() {
        let e: Expr = "x + y".parse().unwrap();
        let p = EvalProgram::compile(&e);
        let err = p
            .eval_valuations(&[v(&[("x", 1)])], 8)
            .unwrap_err();
        assert_eq!(err.name().as_str(), "y");
    }

    #[test]
    fn variable_free_programs_evaluate_constants() {
        let e: Expr = "~0 + 3".parse().unwrap();
        let p = EvalProgram::compile(&e);
        assert!(p.vars().is_empty());
        assert_eq!(p.eval_valuations(&[Valuation::new()], 8).unwrap(), [2]);
        // Lenient scalar eval agrees — variable-free needs no bindings.
        assert_eq!(e.eval(&Valuation::new(), 8), 2);
    }

    #[test]
    fn bit_parallel_matches_width_1_eval() {
        // Arithmetic included: width-1 semantics is carry-free.
        let e: Expr = "(x & ~y) + y - 2*(x | z) * ~z".parse().unwrap();
        let p = EvalProgram::compile(&e);
        // Lane i: (x, y, z) = bits of i.
        let x_word = row_bit_pattern(2, 0);
        let y_word = row_bit_pattern(1, 0);
        let z_word = row_bit_pattern(0, 0);
        let word = p.eval_bits(&[x_word, y_word, z_word]);
        for lane in 0..8u64 {
            let val = v(&[
                ("x", (lane >> 2) & 1),
                ("y", (lane >> 1) & 1),
                ("z", lane & 1),
            ]);
            assert_eq!((word >> lane) & 1, e.eval(&val, 1), "lane {lane}");
        }
    }

    #[test]
    fn wide_matches_narrow_eval_bits_per_word() {
        let e: Expr = "(x & ~y) + y - 2*(x | z) * ~z".parse().unwrap();
        let p = EvalProgram::compile(&e);
        // Blocks 0..WIDE_LANES of the 3-variable truth-table binding:
        // word w of the wide result must equal eval_bits of block w.
        let blocks: Vec<[u64; WIDE_LANES]> = (0..3u32)
            .map(|v| {
                let mut b = [0u64; WIDE_LANES];
                for (w, word) in b.iter_mut().enumerate() {
                    *word = row_bit_pattern(2 - v, w);
                }
                b
            })
            .collect();
        let wide = p.eval_bits_wide(&blocks);
        for w in 0..WIDE_LANES {
            let words: Vec<u64> = blocks.iter().map(|b| b[w]).collect();
            assert_eq!(wide[w], p.eval_bits(&words), "word {w}");
        }
    }

    #[test]
    fn row_bit_patterns() {
        // p < 6: fixed alternating masks.
        assert_eq!(row_bit_pattern(0, 0), 0xaaaa_aaaa_aaaa_aaaa);
        assert_eq!(row_bit_pattern(5, 7), 0xffff_ffff_0000_0000);
        // p >= 6: constant per block.
        assert_eq!(row_bit_pattern(6, 0), 0);
        assert_eq!(row_bit_pattern(6, 1), u64::MAX);
        assert_eq!(row_bit_pattern(6, 2), 0);
        assert_eq!(row_bit_pattern(8, 3), 0);
        assert_eq!(row_bit_pattern(8, 4), u64::MAX);
        // Exhaustive spot-check against the definition.
        for p in 0..10u32 {
            for block in 0..8usize {
                let w = row_bit_pattern(p, block);
                for i in 0..64u64 {
                    let expected = ((block as u64 * 64 + i) >> p) & 1;
                    assert_eq!((w >> i) & 1, expected, "p={p} block={block} i={i}");
                }
            }
        }
    }

    #[test]
    fn arena_tape_is_byte_identical_to_tree_tape() {
        let arena = ExprArena::new();
        for src in [
            "x",
            "42",
            "2*(x|y) - (~x&y) - (x&~y)",
            "(x & y) + (x & y) * (x & y)", // shared subtree, duplicated in the tape
            "z + (a & b) * z",
            "~0 + 3",
            "-(x ^ y) * 3 - ~z",
        ] {
            let e: Expr = src.parse().unwrap();
            let id = arena.intern(&e);
            let from_tree = EvalProgram::compile(&arena.extract(id));
            let from_arena = EvalProgram::compile_arena(&arena, id);
            assert_eq!(from_arena, from_tree, "tape divergence for `{src}`");
        }
    }

    #[test]
    fn compile_arena_advances_tape_counter() {
        let arena = ExprArena::new();
        let id = arena.intern(&"x ^ y".parse().unwrap());
        let before = engine_stats().tape_compiles;
        EvalProgram::compile_arena(&arena, id);
        assert!(engine_stats().tape_compiles > before);
    }

    #[test]
    fn engine_counters_advance() {
        let before = engine_stats();
        let p = EvalProgram::compile(&"x ^ y".parse().unwrap());
        p.eval_bits(&[0, u64::MAX]);
        p.eval_bits_wide(&[[0; WIDE_LANES], [u64::MAX; WIDE_LANES]]);
        p.eval_valuations(&[v(&[("x", 1), ("y", 2)])], 8).unwrap();
        let after = engine_stats();
        assert!(after.tape_compiles > before.tape_compiles);
        assert!(after.bit_parallel_passes > before.bit_parallel_passes);
        assert!(after.bit_parallel_rows >= before.bit_parallel_rows + 64);
        assert!(after.wide_passes > before.wide_passes);
        assert!(after.batch_passes > before.batch_passes);
        assert!(after.batch_rows > before.batch_rows);
    }
}
