//! Rust operator overloads for building [`Expr`] trees.
//!
//! Each overload maps to the corresponding MBA operator, so expression
//! construction in Rust reads like the concrete syntax:
//!
//! ```
//! use mba_expr::Expr;
//! let (x, y) = (Expr::var("x"), Expr::var("y"));
//! let e = (x.clone() ^ y.clone()) + Expr::constant(2) * (x & y);
//! assert_eq!(e.to_string(), "(x^y)+2*(x&y)");
//! ```

use std::ops;

use crate::ast::{BinOp, Expr, UnOp};

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:expr) => {
        impl ops::$trait for Expr {
            type Output = Expr;
            fn $method(self, rhs: Expr) -> Expr {
                Expr::binary($op, self, rhs)
            }
        }
    };
}

impl_binop!(Add, add, BinOp::Add);
impl_binop!(Sub, sub, BinOp::Sub);
impl_binop!(Mul, mul, BinOp::Mul);
impl_binop!(BitAnd, bitand, BinOp::And);
impl_binop!(BitOr, bitor, BinOp::Or);
impl_binop!(BitXor, bitxor, BinOp::Xor);

impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        match self {
            Expr::Const(c) => Expr::Const(-c),
            other => Expr::unary(UnOp::Neg, other),
        }
    }
}

impl ops::Not for Expr {
    type Output = Expr;
    fn not(self) -> Expr {
        Expr::unary(UnOp::Not, self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overloads_build_expected_trees() {
        let x = Expr::var("x");
        let y = Expr::var("y");
        let built = (x.clone() | y.clone()) - (x & y);
        let parsed: Expr = "(x|y) - (x&y)".parse().unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn neg_folds_constants() {
        assert_eq!(-Expr::Const(5), Expr::Const(-5));
        assert_eq!(-Expr::var("x"), Expr::unary(UnOp::Neg, Expr::var("x")));
    }

    #[test]
    fn not_wraps() {
        assert_eq!(!Expr::var("x"), "~x".parse().unwrap());
    }
}
