//! The five complexity metrics of the paper's §3.1 study.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::{Expr, OpDomain};
use crate::classify::{classify, decompose_term, flatten_sum, MbaClass};

/// Complexity measurements for one MBA expression (paper §3.1).
///
/// ```
/// use mba_expr::{Expr, Metrics};
/// let e: Expr = "x + 2*y + (x&y) - 3*(x^y) + 4".parse().unwrap();
/// let m = Metrics::of(&e);
/// assert_eq!(m.num_vars, 2);
/// assert_eq!(m.num_terms, 5);
/// assert_eq!(m.max_coefficient, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// MBA type: linear, poly, or non-poly.
    pub class: MbaClass,
    /// Number of distinct variables.
    pub num_vars: usize,
    /// Number of operators that connect arithmetic and bitwise computation
    /// (the paper's dominant difficulty factor, Figure 3).
    pub alternation: usize,
    /// Length of the canonical printed form, in bytes.
    pub length: usize,
    /// Number of top-level terms after flattening `+`/`-`.
    pub num_terms: usize,
    /// Largest absolute coefficient over all terms.
    pub max_coefficient: u128,
}

impl Metrics {
    /// Measures `e`.
    pub fn of(e: &Expr) -> Self {
        Metrics {
            class: classify(e),
            num_vars: e.vars().len(),
            alternation: alternation(e),
            length: e.to_string().len(),
            num_terms: flatten_sum(e).len(),
            max_coefficient: max_coefficient(e),
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} MBA: vars={} alternation={} length={} terms={} max|coef|={}",
            self.class,
            self.num_vars,
            self.alternation,
            self.length,
            self.num_terms,
            self.max_coefficient
        )
    }
}

/// Counts the *MBA alternation*: the number of operator nodes with at
/// least one operand rooted in the opposite domain (§3.1, metric 3).
///
/// Leaves are domain-neutral, so `x + y` and `x & y` both have
/// alternation 0, while `(x ∧ y) + 2·z` has alternation 1 (the `+`).
///
/// ```
/// use mba_expr::{metrics::alternation, Expr};
/// assert_eq!(alternation(&"(x & y) + 2*z".parse::<Expr>().unwrap()), 1);
/// assert_eq!(alternation(&"x + y * z".parse::<Expr>().unwrap()), 0);
/// ```
pub fn alternation(e: &Expr) -> usize {
    match e {
        Expr::Const(_) | Expr::Var(_) => 0,
        Expr::Unary(op, inner) => {
            let connects = matches!(inner.top_domain(), Some(d) if d != op.domain());
            usize::from(connects) + alternation(inner)
        }
        Expr::Binary(op, a, b) => {
            let connects = [a, b]
                .iter()
                .any(|c| matches!(c.top_domain(), Some(d) if d != op.domain()));
            usize::from(connects) + alternation(a) + alternation(b)
        }
    }
}

/// Largest absolute coefficient across the expression's terms. Constant
/// terms count as their own coefficient; terms without an explicit
/// constant factor count as 1.
pub fn max_coefficient(e: &Expr) -> u128 {
    flatten_sum(e)
        .iter()
        .map(|t| decompose_term(t.expr, t.sign).coefficient.unsigned_abs())
        .max()
        .unwrap_or(0)
}

/// Returns true if the subtree contains at least one operator from each
/// domain — a cheap "is this actually mixed?" predicate used by the
/// corpus generator.
pub fn is_mixed(e: &Expr) -> bool {
    fn scan(e: &Expr, seen_arith: &mut bool, seen_bit: &mut bool) {
        match e.top_domain() {
            Some(OpDomain::Arithmetic) => *seen_arith = true,
            Some(OpDomain::Bitwise) => *seen_bit = true,
            None => {}
        }
        match e {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Unary(_, inner) => scan(inner, seen_arith, seen_bit),
            Expr::Binary(_, a, b) => {
                scan(a, seen_arith, seen_bit);
                scan(b, seen_arith, seen_bit);
            }
        }
    }
    let (mut a, mut b) = (false, false);
    scan(e, &mut a, &mut b);
    a && b
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alt(src: &str) -> usize {
        alternation(&src.parse::<Expr>().unwrap())
    }

    #[test]
    fn pure_expressions_have_zero_alternation() {
        assert_eq!(alt("x + y*z - 3"), 0);
        assert_eq!(alt("~(x & y) ^ (x | z)"), 0);
        assert_eq!(alt("x"), 0);
    }

    #[test]
    fn paper_example_alternation() {
        // (x ∧ y) + 2z: the + connects a bitwise operand (§3.1).
        assert_eq!(alt("(x & y) + 2*z"), 1);
    }

    #[test]
    fn each_connecting_operator_counts_once() {
        // Sum of three bitwise terms: two + operators, each connecting.
        assert_eq!(alt("(x&y) + (x|y) + (x^y)"), 2);
        // Multiplying by a coefficient: each `*` connects, while the `+`
        // joins two arithmetic products and does not.
        assert_eq!(alt("2*(x&y) + 3*(x|y)"), 2);
    }

    #[test]
    fn unary_alternation() {
        assert_eq!(alt("~(x + y)"), 1);
        assert_eq!(alt("-(x & y)"), 1);
        assert_eq!(alt("~x"), 0);
    }

    #[test]
    fn simplification_example_reduces_alternation() {
        // §4.3: 2(x∨y) − (¬x∧y) − (x∧¬y) has alternation 3; x+y has 0.
        assert_eq!(alt("2*(x|y) - (~x&y) - (x&~y)"), 3);
        assert_eq!(alt("x + y"), 0);
        // §4.5: x + y − 2(x∧y) has alternation 1; x⊕y has 0.
        assert_eq!(alt("x + y - 2*(x&y)"), 1);
        assert_eq!(alt("x ^ y"), 0);
    }

    #[test]
    fn max_coefficient_cases() {
        assert_eq!(max_coefficient(&"x + 2*y - 35*(x&y)".parse().unwrap()), 35);
        assert_eq!(max_coefficient(&"x - y".parse().unwrap()), 1);
        assert_eq!(max_coefficient(&"7".parse().unwrap()), 7);
        assert_eq!(max_coefficient(&"x + 4".parse().unwrap()), 4);
    }

    #[test]
    fn metrics_of_full_expression() {
        let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse().unwrap();
        let m = Metrics::of(&e);
        assert_eq!(m.class, MbaClass::Linear);
        assert_eq!(m.num_vars, 2);
        assert_eq!(m.alternation, 3);
        assert_eq!(m.num_terms, 3);
        assert_eq!(m.max_coefficient, 2);
        assert_eq!(m.length, "2*(x|y)-(~x&y)-(x&~y)".len());
    }

    #[test]
    fn is_mixed_predicate() {
        assert!(is_mixed(&"(x&y)+1".parse().unwrap()));
        assert!(!is_mixed(&"x+y".parse().unwrap()));
        assert!(!is_mixed(&"x&y".parse().unwrap()));
    }
}
