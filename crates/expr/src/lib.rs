//! MBA expression substrate.
//!
//! This crate provides the representation layer shared by the whole
//! MBA-Solver reproduction: an abstract syntax tree for
//! Mixed-Bitwise-Arithmetic (MBA) expressions over `w`-bit two's-complement
//! bit-vectors, together with
//!
//! * a parser for the Python/C-like concrete syntax used throughout the MBA
//!   literature (via [`parse`] / `str::parse`),
//! * a precedence-aware pretty printer ([`Expr`]'s [`std::fmt::Display`]),
//! * an evaluator over masked `u64` bit-vectors ([`Expr::eval`]),
//! * the five complexity metrics of the paper's §3.1 ([`metrics::Metrics`]),
//! * the linear / polynomial / non-polynomial classification of
//!   Definitions 1 and 2 ([`classify::MbaClass`]).
//!
//! # Example
//!
//! ```
//! use mba_expr::{Expr, Valuation};
//!
//! let e: Expr = "2*(x|y) - (~x&y) - (x&~y)".parse()?;
//! let v = Valuation::new().with("x", 13).with("y", 7);
//! // The expression is an obfuscation of `x + y`.
//! assert_eq!(e.eval(&v, 64), 13 + 7);
//! # Ok::<(), mba_expr::ParseExprError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
mod ast;
pub mod classify;
mod eval;
pub mod metrics;
mod ops;
mod parser;
mod printer;
pub mod program;
pub mod visit;

pub use arena::{ArenaStats, ExprArena, NodeId};
pub use ast::{BinOp, Expr, Ident, OpDomain, UnOp};
pub use classify::MbaClass;
pub use eval::{mask, UnboundVariableError, Valuation};
pub use metrics::Metrics;
pub use parser::{parse, ParseExprError};
pub use program::{engine_stats, row_bit_pattern, EngineStats, EvalProgram, WIDE_LANES};
