//! Classification of MBA expressions into the paper's three categories
//! (§2.1, Definitions 1 and 2, Figure 2) plus the term decomposition
//! helpers the classifier and the simplifier share.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ast::{BinOp, Expr, UnOp};

/// The category of an MBA expression.
///
/// Following the paper's terminology, [`MbaClass::Polynomial`] means
/// *non-linear* polynomial MBA ("poly MBA"); linear expressions are
/// reported as [`MbaClass::Linear`] even though they satisfy Definition 2
/// as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MbaClass {
    /// `Σ aᵢ·eᵢ` with each `eᵢ` a pure bitwise expression (Definition 1).
    Linear,
    /// `Σ aᵢ·eᵢ` of degree ≤ 1 where every factor is bitwise-with-
    /// constants ([`crate::Expr::is_bitwise_with_consts`]) and at least
    /// one factor carries a non-uniform constant, e.g. `x & 3`. This is
    /// the *semi-linear* extension of the trichotomy (Skees, arXiv
    /// 2406.10016): linear MBA plus constant operands inside the
    /// bitwise layer.
    SemiLinear,
    /// `Σ aᵢ·Π eᵢⱼ` with every factor pure bitwise and at least one term
    /// of degree ≥ 2 (Definition 2, excluding the linear case).
    Polynomial,
    /// Anything else, e.g. a bitwise operator applied to an arithmetic
    /// sub-expression such as `(x − y) ∨ z`.
    NonPolynomial,
}

impl fmt::Display for MbaClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MbaClass::Linear => "linear",
            MbaClass::SemiLinear => "semi-linear",
            MbaClass::Polynomial => "poly",
            MbaClass::NonPolynomial => "non-poly",
        })
    }
}

/// A term of a sum: a sign/constant multiplier and the factor expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SumTerm<'a> {
    /// Accumulated sign, `1` or `-1`.
    pub sign: i128,
    /// The addend, guaranteed not to be `Add`, `Sub` or arithmetic `Neg`.
    pub expr: &'a Expr,
}

/// Flattens nested `+`, `-` and unary `-` into a list of signed addends.
///
/// ```
/// use mba_expr::{classify::flatten_sum, Expr};
/// let e: Expr = "x - (y + z)".parse().unwrap();
/// let terms = flatten_sum(&e);
/// let signs: Vec<i128> = terms.iter().map(|t| t.sign).collect();
/// assert_eq!(signs, [1, -1, -1]);
/// ```
pub fn flatten_sum(e: &Expr) -> Vec<SumTerm<'_>> {
    let mut out = Vec::new();
    collect_sum(e, 1, &mut out);
    out
}

fn collect_sum<'a>(e: &'a Expr, sign: i128, out: &mut Vec<SumTerm<'a>>) {
    match e {
        Expr::Binary(BinOp::Add, a, b) => {
            collect_sum(a, sign, out);
            collect_sum(b, sign, out);
        }
        Expr::Binary(BinOp::Sub, a, b) => {
            collect_sum(a, sign, out);
            collect_sum(b, -sign, out);
        }
        Expr::Unary(UnOp::Neg, inner) => collect_sum(inner, -sign, out),
        other => out.push(SumTerm { sign, expr: other }),
    }
}

/// A term decomposed as `coefficient × Π factors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TermParts<'a> {
    /// The accumulated integer coefficient (product of all constant
    /// factors and the incoming sign).
    pub coefficient: i128,
    /// The non-constant factors, in source order.
    pub factors: Vec<&'a Expr>,
}

/// Decomposes a (non-sum) term into its constant coefficient and
/// non-constant factors by flattening `*` chains and folding unary minus
/// and constant factors into the coefficient.
///
/// ```
/// use mba_expr::{classify::decompose_term, Expr};
/// let e: Expr = "-2 * (x & y) * 3 * z".parse().unwrap();
/// let parts = decompose_term(&e, 1);
/// assert_eq!(parts.coefficient, -6);
/// assert_eq!(parts.factors.len(), 2);
/// ```
pub fn decompose_term(e: &Expr, sign: i128) -> TermParts<'_> {
    let mut parts = TermParts {
        coefficient: sign,
        factors: Vec::new(),
    };
    collect_factors(e, &mut parts);
    parts
}

fn collect_factors<'a>(e: &'a Expr, parts: &mut TermParts<'a>) {
    match e {
        Expr::Binary(BinOp::Mul, a, b) => {
            collect_factors(a, parts);
            collect_factors(b, parts);
        }
        Expr::Unary(UnOp::Neg, inner) => {
            parts.coefficient = parts.coefficient.wrapping_neg();
            collect_factors(inner, parts);
        }
        Expr::Const(c) => parts.coefficient = parts.coefficient.wrapping_mul(*c),
        other => parts.factors.push(other),
    }
}

/// Classifies an expression per Definitions 1 and 2.
///
/// ```
/// use mba_expr::{classify::classify, Expr, MbaClass};
/// assert_eq!(classify(&"x + 2*y + (x&y) - 3*(x^y) + 4".parse::<Expr>().unwrap()),
///            MbaClass::Linear);
/// assert_eq!(classify(&"x*y + 2*(x&y)".parse::<Expr>().unwrap()),
///            MbaClass::Polynomial);
/// assert_eq!(classify(&"(x - y) | z".parse::<Expr>().unwrap()),
///            MbaClass::NonPolynomial);
/// ```
pub fn classify(e: &Expr) -> MbaClass {
    let mut linear = true;
    let mut semi = false;
    for term in flatten_sum(e) {
        let parts = decompose_term(term.expr, term.sign);
        if parts.factors.len() > 1 {
            // Degree ≥ 2 terms must be all-pure: mixing non-uniform
            // constants into products is outside both Definition 2 and
            // the semi-linear extension, so it stays non-poly.
            if !parts.factors.iter().all(|f| f.is_pure_bitwise()) {
                return MbaClass::NonPolynomial;
            }
            linear = false;
        } else if let [factor] = parts.factors.as_slice() {
            if factor.is_pure_bitwise() {
                // Plain Definition 1 factor.
            } else if factor.is_bitwise_with_consts() {
                // A degree-1 bitwise factor with non-uniform constant
                // operands, e.g. `x & 3`: semi-linear, not non-poly.
                semi = true;
            } else {
                return MbaClass::NonPolynomial;
            }
        }
    }
    match (linear, semi) {
        (true, false) => MbaClass::Linear,
        (true, true) => MbaClass::SemiLinear,
        // A non-uniform constant factor next to a degree ≥ 2 term is
        // outside the semi-linear class; keep it conservative.
        (false, true) => MbaClass::NonPolynomial,
        (false, false) => MbaClass::Polynomial,
    }
}

impl Expr {
    /// Classifies the expression; see [`classify`].
    pub fn mba_class(&self) -> MbaClass {
        classify(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_of(src: &str) -> MbaClass {
        classify(&src.parse::<Expr>().unwrap())
    }

    #[test]
    fn paper_expression_1_is_linear() {
        assert_eq!(class_of("x + 2*y + (x&y) - 3*(x^y) + 4"), MbaClass::Linear);
    }

    #[test]
    fn paper_expression_4_is_polynomial() {
        assert_eq!(
            class_of("x*y + 2*(x&y) + 3*(x&~y)*(x|y) - 5"),
            MbaClass::Polynomial
        );
    }

    #[test]
    fn figure_1_rhs_is_polynomial() {
        assert_eq!(
            class_of("(x&~y)*(~x&y) + (x&y)*(x|y)"),
            MbaClass::Polynomial
        );
    }

    #[test]
    fn bitwise_over_arithmetic_is_non_poly() {
        assert_eq!(class_of("(x - y) | z"), MbaClass::NonPolynomial);
        assert_eq!(class_of("~(x + 1)"), MbaClass::NonPolynomial);
        assert_eq!(
            class_of("((x&~y) - (~x&y) | z) + ((x&~y) - (~x&y) & z)"),
            MbaClass::NonPolynomial
        );
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(class_of("42"), MbaClass::Linear);
        assert_eq!(class_of("x"), MbaClass::Linear);
        assert_eq!(class_of("~(x ^ y)"), MbaClass::Linear);
        assert_eq!(class_of("x*y"), MbaClass::Polynomial);
        assert_eq!(class_of("-x"), MbaClass::Linear);
    }

    #[test]
    fn neg_folds_into_coefficient() {
        assert_eq!(class_of("-(3*(x&y))"), MbaClass::Linear);
        let e: Expr = "-(3*(x&y))".parse().unwrap();
        let terms = flatten_sum(&e);
        assert_eq!(terms.len(), 1);
        let parts = decompose_term(terms[0].expr, terms[0].sign);
        assert_eq!(parts.coefficient, -3);
    }

    #[test]
    fn nested_neg_in_factor_position() {
        // -x * y: the unary minus folds into the coefficient.
        let e: Expr = "-x * y".parse().unwrap();
        let terms = flatten_sum(&e);
        let parts = decompose_term(terms[0].expr, terms[0].sign);
        assert_eq!(parts.coefficient, -1);
        assert_eq!(parts.factors.len(), 2);
    }

    #[test]
    fn flatten_handles_deep_mixes() {
        let e: Expr = "a - (b - (c - d))".parse().unwrap();
        let signs: Vec<i128> = flatten_sum(&e).iter().map(|t| t.sign).collect();
        assert_eq!(signs, [1, -1, 1, -1]);
    }

    #[test]
    fn display_names() {
        assert_eq!(MbaClass::Linear.to_string(), "linear");
        assert_eq!(MbaClass::SemiLinear.to_string(), "semi-linear");
        assert_eq!(MbaClass::Polynomial.to_string(), "poly");
        assert_eq!(MbaClass::NonPolynomial.to_string(), "non-poly");
    }

    /// Regression: these constant-offset bitwise shapes used to be
    /// misclassified as non-poly; they are semi-linear (linear MBA with
    /// non-uniform constants inside the bitwise layer).
    #[test]
    fn constant_offset_bitwise_terms_are_semi_linear() {
        assert_eq!(class_of("x & 3"), MbaClass::SemiLinear);
        assert_eq!(class_of("(x | 5) - y"), MbaClass::SemiLinear);
        assert_eq!(class_of("2*(x ^ 7) + (x & y)"), MbaClass::SemiLinear);
        assert_eq!(class_of("(x & 240) + (x & ~240)"), MbaClass::SemiLinear);
        assert_eq!(class_of("~(x & 12) + 4*y"), MbaClass::SemiLinear);
        assert_eq!(class_of("(x ^ 85) | (y & 10)"), MbaClass::SemiLinear);
    }

    /// The reclassification must not leak: arithmetic under a bitwise
    /// operator and constants inside degree ≥ 2 products stay non-poly,
    /// and pure shapes keep their old class.
    #[test]
    fn semi_linear_reclassification_is_conservative() {
        assert_eq!(class_of("~(x + 1)"), MbaClass::NonPolynomial);
        assert_eq!(class_of("(x - y) | 3"), MbaClass::NonPolynomial);
        assert_eq!(class_of("(x & 3) * y"), MbaClass::NonPolynomial);
        assert_eq!(class_of("(x & 3) + x*y"), MbaClass::NonPolynomial);
        assert_eq!(class_of("x & -1"), MbaClass::Linear);
        assert_eq!(class_of("x & 0"), MbaClass::Linear);
        assert_eq!(class_of("x*y + 2*(x&y)"), MbaClass::Polynomial);
    }
}
