//! Precedence-aware pretty printing.
//!
//! The printer emits the same Python-style syntax the parser accepts and
//! inserts the minimal parentheses needed for the output to re-parse to a
//! structurally identical tree (a property checked by round-trip tests and
//! a dedicated proptest).

use std::fmt;

use crate::ast::{BinOp, Expr};

/// Binding strength. Larger binds tighter.
fn binop_prec(op: BinOp) -> u8 {
    match op {
        BinOp::Or => 1,
        BinOp::Xor => 2,
        BinOp::And => 3,
        BinOp::Add | BinOp::Sub => 4,
        BinOp::Mul => 5,
    }
}

const UNARY_PREC: u8 = 6;
const ATOM_PREC: u8 = 7;

fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Const(c) if *c < 0 => UNARY_PREC,
        Expr::Const(_) | Expr::Var(_) => ATOM_PREC,
        Expr::Unary(..) => UNARY_PREC,
        Expr::Binary(op, ..) => binop_prec(*op),
    }
}

fn fmt_expr(e: &Expr, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match e {
        Expr::Const(c) => write!(f, "{c}"),
        Expr::Var(v) => write!(f, "{v}"),
        Expr::Unary(op, inner) => {
            f.write_str(op.symbol())?;
            fmt_child(inner, UNARY_PREC, f)
        }
        Expr::Binary(op, lhs, rhs) => {
            let p = binop_prec(*op);
            // Left child may sit at the same level (operators are
            // left-associative); the right child needs strictly tighter
            // binding for non-commutative/non-associative shapes.
            fmt_child(lhs, p, f)?;
            f.write_str(op.symbol())?;
            let rhs_min = match op {
                // `a-(b+c)`, `a-(b-c)` both need parens on the right.
                BinOp::Sub => p + 1,
                // Add/Mul/And/Or/Xor are associative: `a+(b-c)` prints as
                // `a+b-c` only when the tree actually is left-leaning, so
                // a right child at the same level still needs parens to
                // preserve the tree shape exactly.
                _ => p + 1,
            };
            fmt_child(rhs, rhs_min, f)
        }
    }
}

fn fmt_child(child: &Expr, min_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if prec(child) < min_prec {
        f.write_str("(")?;
        fmt_expr(child, f)?;
        f.write_str(")")
    } else {
        fmt_expr(child, f)
    }
}

impl fmt::Display for Expr {
    /// Formats the expression in the concrete syntax accepted by the
    /// parser, with minimal parentheses.
    ///
    /// ```
    /// use mba_expr::Expr;
    /// let e: Expr = "((x) + ((y)*(z)))".parse().unwrap();
    /// assert_eq!(e.to_string(), "x+y*z");
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_expr(self, f)
    }
}

#[cfg(test)]
mod tests {
    use crate::ast::{BinOp, Expr, UnOp};

    fn rt(src: &str) -> Expr {
        src.parse().unwrap()
    }

    #[track_caller]
    fn assert_roundtrip(e: &Expr) {
        let printed = e.to_string();
        let reparsed: Expr = printed.parse().unwrap_or_else(|err| {
            panic!("printed form `{printed}` failed to parse: {err}");
        });
        assert_eq!(&reparsed, e, "print/parse round trip changed `{printed}`");
    }

    #[test]
    fn drops_redundant_parens() {
        assert_eq!(rt("((x+y))").to_string(), "x+y");
        assert_eq!(rt("(x)+(y)").to_string(), "x+y");
    }

    #[test]
    fn keeps_necessary_parens() {
        assert_eq!(rt("(x+y)*z").to_string(), "(x+y)*z");
        assert_eq!(rt("x-(y-z)").to_string(), "x-(y-z)");
        assert_eq!(rt("x-(y+z)").to_string(), "x-(y+z)");
        assert_eq!(rt("(x&y)+z").to_string(), "(x&y)+z");
        assert_eq!(rt("~(x+y)").to_string(), "~(x+y)");
        assert_eq!(rt("-(x*y)").to_string(), "-(x*y)");
    }

    #[test]
    fn right_nested_same_level_keeps_shape() {
        // Add(x, Add(y, z)) must not print as the left-leaning x+y+z.
        let e = Expr::binary(
            BinOp::Add,
            Expr::var("x"),
            Expr::binary(BinOp::Add, Expr::var("y"), Expr::var("z")),
        );
        assert_eq!(e.to_string(), "x+(y+z)");
        assert_roundtrip(&e);
    }

    #[test]
    fn negative_constants() {
        assert_eq!(Expr::Const(-1).to_string(), "-1");
        let e = Expr::binary(BinOp::Mul, Expr::Const(-2), Expr::var("x"));
        assert_eq!(e.to_string(), "-2*x");
        assert_roundtrip(&e);
        let e = Expr::binary(BinOp::Sub, Expr::var("x"), Expr::Const(-5));
        assert_roundtrip(&e);
    }

    #[test]
    fn unary_chains_roundtrip() {
        for src in ["~~x", "-~x", "~-x", "~(-1)", "-(x&y)"] {
            assert_roundtrip(&rt(src));
        }
    }

    #[test]
    fn paper_examples_print_cleanly() {
        assert_eq!(
            rt("2*(x|y) - (~x&y) - (x&~y)").to_string(),
            "2*(x|y)-(~x&y)-(x&~y)"
        );
        assert_eq!(
            rt("(x ^ y) + 2*y - 2*(~x & y)").to_string(),
            "(x^y)+2*y-2*(~x&y)"
        );
    }

    #[test]
    fn mixed_precedence_roundtrips() {
        for src in [
            "a|b^c&d+e*f",
            "(a|b)^((c&d)+e)*f",
            "x*y - (x&~y)*(~x&y) - (x&y)*(x|y)",
            "~(x | ~(y & ~z))",
            "-(-(x))",
        ] {
            assert_roundtrip(&rt(src));
        }
    }

    #[test]
    fn unary_tightness() {
        // Unary binds tighter than `*`: Neg(x)*y prints without parens.
        let e = Expr::binary(
            BinOp::Mul,
            Expr::unary(UnOp::Neg, Expr::var("x")),
            Expr::var("y"),
        );
        assert_eq!(e.to_string(), "-x*y");
        assert_roundtrip(&e);
    }
}
