//! Traversal and rewriting utilities shared by the simplifier and the
//! baseline tools.

use crate::ast::Expr;

/// Rebuilds the tree bottom-up, applying `f` to every node after its
/// children have been rewritten. `f` receives an owned node whose children
/// are already transformed and returns the replacement.
///
/// ```
/// use mba_expr::{visit::transform_bottom_up, Expr};
/// // Fold `e + 0` to `e` everywhere.
/// let e: Expr = "(x + 0) * (y + 0)".parse().unwrap();
/// let out = transform_bottom_up(&e, &mut |node| match node {
///     Expr::Binary(mba_expr::BinOp::Add, a, b) if *b == Expr::Const(0) => *a,
///     other => other,
/// });
/// assert_eq!(out.to_string(), "x*y");
/// ```
pub fn transform_bottom_up(e: &Expr, f: &mut impl FnMut(Expr) -> Expr) -> Expr {
    let rebuilt = match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::Unary(op, inner) => Expr::unary(*op, transform_bottom_up(inner, f)),
        Expr::Binary(op, a, b) => Expr::binary(
            *op,
            transform_bottom_up(a, f),
            transform_bottom_up(b, f),
        ),
    };
    f(rebuilt)
}

/// Applies `f` to every node in pre-order (parents before children).
pub fn for_each_preorder<'a>(e: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(e);
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Unary(_, inner) => for_each_preorder(inner, f),
        Expr::Binary(_, a, b) => {
            for_each_preorder(a, f);
            for_each_preorder(b, f);
        }
    }
}

/// Repeatedly applies `transform_bottom_up` until a fixpoint is reached or
/// `max_rounds` passes have run, whichever comes first. Returns the final
/// expression and the number of rounds performed.
pub fn rewrite_to_fixpoint(
    e: &Expr,
    max_rounds: usize,
    f: &mut impl FnMut(Expr) -> Expr,
) -> (Expr, usize) {
    let mut current = e.clone();
    for round in 0..max_rounds {
        let next = transform_bottom_up(&current, f);
        if next == current {
            return (current, round);
        }
        current = next;
    }
    (current, max_rounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    #[test]
    fn preorder_visits_all_nodes() {
        let e: Expr = "x + y*z".parse().unwrap();
        let mut count = 0;
        for_each_preorder(&e, &mut |_| count += 1);
        assert_eq!(count, e.node_count());
    }

    #[test]
    fn fixpoint_stops_when_stable() {
        let e: Expr = "((x + 0) + 0) + 0".parse().unwrap();
        let (out, rounds) = rewrite_to_fixpoint(&e, 10, &mut |node| match node {
            Expr::Binary(BinOp::Add, a, b) if *b == Expr::Const(0) => *a,
            other => other,
        });
        assert_eq!(out, Expr::var("x"));
        // One pass removes all three (bottom-up), one pass confirms.
        assert!(rounds <= 2, "rounds = {rounds}");
    }

    #[test]
    fn fixpoint_respects_round_cap() {
        // A rewrite that never stabilises: keep swapping operands.
        let e: Expr = "x + y".parse().unwrap();
        let (_, rounds) = rewrite_to_fixpoint(&e, 3, &mut |node| match node {
            Expr::Binary(BinOp::Add, a, b) => Expr::binary(BinOp::Add, *b, *a),
            other => other,
        });
        assert_eq!(rounds, 3);
    }
}
